package disksim

import (
	"testing"
	"time"
)

// noJitter returns a deterministic config for exact-arithmetic tests.
func noJitter() Config {
	c := DefaultConfig()
	c.PositioningJitter = 0
	c.BandwidthJitter = 0
	return c
}

func TestSimulateQueuedValidation(t *testing.T) {
	a := MustArray(2, noJitter(), 1)
	if _, err := a.SimulateQueued([]Request{{ID: 0, Loads: []int{1}}}, 1e6); err == nil {
		t.Fatal("mismatched loads must fail")
	}
	if _, err := a.SimulateQueued([]Request{{ID: 0, Arrival: -1, Loads: []int{1, 0}}}, 1e6); err == nil {
		t.Fatal("negative arrival must fail")
	}
	out, err := a.SimulateQueued(nil, 1e6)
	if err != nil || len(out) != 0 {
		t.Fatal("empty simulation must succeed")
	}
}

func TestSimulateQueuedSingleRequestEqualsServeTime(t *testing.T) {
	a := MustArray(3, noJitter(), 2)
	per := a.DiskTime(0, 1, 1e6) // deterministic per-access time
	comps, err := a.SimulateQueued([]Request{{ID: 0, Loads: []int{1, 2, 0}}}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Latency() != 2*per {
		t.Fatalf("latency = %v, want %v (slowest disk has 2 accesses)", comps[0].Latency(), 2*per)
	}
}

func TestSimulateQueuedFIFOContention(t *testing.T) {
	// Two identical requests hitting the same single disk back to back:
	// the second waits for the first.
	a := MustArray(1, noJitter(), 3)
	per := a.DiskTime(0, 1, 1e6)
	comps, err := a.SimulateQueued([]Request{
		{ID: 0, Arrival: 0, Loads: []int{1}},
		{ID: 1, Arrival: 0, Loads: []int{1}},
	}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Finish != per {
		t.Fatalf("first finish %v, want %v", comps[0].Finish, per)
	}
	if comps[1].Finish != 2*per {
		t.Fatalf("second finish %v, want %v (queued)", comps[1].Finish, 2*per)
	}
	if comps[1].Latency() != 2*per {
		t.Fatalf("second latency %v includes no queueing", comps[1].Latency())
	}
}

func TestSimulateQueuedDisjointDisksNoContention(t *testing.T) {
	a := MustArray(2, noJitter(), 4)
	per := a.DiskTime(0, 1, 1e6)
	comps, err := a.SimulateQueued([]Request{
		{ID: 0, Arrival: 0, Loads: []int{1, 0}},
		{ID: 1, Arrival: 0, Loads: []int{0, 1}},
	}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if c.Latency() != per {
			t.Fatalf("request %d latency %v, want %v (no contention)", c.ID, c.Latency(), per)
		}
	}
}

func TestSimulateQueuedArrivalOrdering(t *testing.T) {
	// A late-arriving request must not be served before an earlier one on
	// the same disk, regardless of slice order.
	a := MustArray(1, noJitter(), 5)
	per := a.DiskTime(0, 1, 1e6)
	comps, err := a.SimulateQueued([]Request{
		{ID: 0, Arrival: per / 2, Loads: []int{1}},
		{ID: 1, Arrival: 0, Loads: []int{1}},
	}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// comps sorted by ID: request 1 arrived first, finishes at per;
	// request 0 queues behind it.
	if comps[1].Finish != per {
		t.Fatalf("early request finish %v, want %v", comps[1].Finish, per)
	}
	if comps[0].Finish != 2*per {
		t.Fatalf("late request finish %v, want %v", comps[0].Finish, 2*per)
	}
}

func TestSummarize(t *testing.T) {
	comps := []Completion{
		{ID: 0, Start: 0, Finish: 10 * time.Millisecond},
		{ID: 1, Start: 0, Finish: 30 * time.Millisecond},
	}
	stats, err := Summarize(comps, []int{1e6, 2e6})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 2 || stats.MeanLatency != 20*time.Millisecond {
		t.Fatalf("stats wrong: %+v", stats)
	}
	if stats.P99Latency != 30*time.Millisecond {
		t.Fatalf("p99 = %v", stats.P99Latency)
	}
	if stats.MakespanTotal != 30*time.Millisecond {
		t.Fatalf("makespan = %v", stats.MakespanTotal)
	}
	if stats.ThroughputMBs != 100 {
		t.Fatalf("throughput = %v, want 100", stats.ThroughputMBs)
	}
	if _, err := Summarize(comps, []int{1}); err == nil {
		t.Fatal("mismatched payloads must fail")
	}
	empty, err := Summarize(nil, nil)
	if err != nil || empty.Requests != 0 {
		t.Fatal("empty summary")
	}
}

func TestQueueingAmplifiesImbalance(t *testing.T) {
	// Under concurrency, the balanced load profile must win by MORE than
	// its serial max-load ratio — queueing compounds the hot disk.
	a := MustArray(10, DefaultConfig(), 6)
	const n = 200
	mk := func(loads []int) []Request {
		reqs := make([]Request, n)
		for i := range reqs {
			// Open loop: arrivals every 5 ms — faster than a hot disk can
			// drain, slower than the balanced profile needs.
			reqs[i] = Request{ID: i, Arrival: time.Duration(i) * 5 * time.Millisecond, Loads: loads}
		}
		return reqs
	}
	balanced := []int{1, 1, 1, 1, 1, 1, 1, 1, 0, 0} // EC-FRM-like 8-elem read
	hot := []int{2, 2, 1, 1, 1, 1, 0, 0, 0, 0}      // standard-like
	payloads := make([]int, n)
	for i := range payloads {
		payloads[i] = 8e6
	}
	cb, err := a.SimulateQueued(mk(balanced), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := a.SimulateQueued(mk(hot), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := Summarize(cb, payloads)
	sh, _ := Summarize(ch, payloads)
	if sb.MeanLatency >= sh.MeanLatency {
		t.Fatalf("balanced mean %v not below hot %v", sb.MeanLatency, sh.MeanLatency)
	}
	if sb.P99Latency >= sh.P99Latency {
		t.Fatalf("balanced p99 %v not below hot %v", sb.P99Latency, sh.P99Latency)
	}
}

func TestQueueOfferMatchesSimulateQueued(t *testing.T) {
	// Feeding the same arrival schedule through the live Queue must produce
	// exactly the completions the batch simulator computes.
	reqs := []Request{
		{ID: 0, Arrival: 0, Loads: []int{1, 1, 0}},
		{ID: 1, Arrival: time.Millisecond, Loads: []int{2, 0, 1}},
		{ID: 2, Arrival: 2 * time.Millisecond, Loads: []int{0, 1, 1}},
	}
	batch, err := MustArray(3, noJitter(), 8).SimulateQueued(reqs, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(MustArray(3, noJitter(), 8))
	for i, r := range reqs {
		q.Advance(r.Arrival)
		c := q.Offer(r.Loads, 1e6)
		if c.Start != batch[i].Start || c.Finish != batch[i].Finish {
			t.Fatalf("request %d: live queue %+v, batch %+v", r.ID, c, batch[i])
		}
	}
}

func TestQueueDepths(t *testing.T) {
	a := MustArray(2, noJitter(), 9)
	q := NewQueue(a)
	for _, d := range q.Depths() {
		if d != 0 {
			t.Fatal("fresh queue must be idle")
		}
	}
	per := a.MeanDiskTime(0, 1, 1e6)
	q.Offer([]int{1, 0}, 1e6)
	depths := q.Depths()
	if depths[0] != per || depths[1] != 0 {
		t.Fatalf("depths = %v, want [%v 0]", depths, per)
	}
	q.Advance(per / 2)
	if got := q.Depths()[0]; got != per-per/2 {
		t.Fatalf("half-drained depth = %v, want %v", got, per-per/2)
	}
	q.Advance(10 * per)
	if got := q.Depths()[0]; got != 0 {
		t.Fatalf("drained depth = %v, want 0", got)
	}
	// Advance never rewinds.
	q.Advance(0)
	if q.Now() != 10*per {
		t.Fatal("Advance rewound the clock")
	}
}

func TestQueuePickAvoidsDeepQueue(t *testing.T) {
	a := MustArray(3, noJitter(), 10)
	q := NewQueue(a)
	// Pile work on disk 0, then offer two equivalent recovery options.
	q.Offer([]int{8, 0, 0}, 1e6)
	options := [][]int{
		{1, 0, 0}, // lands behind the pile
		{0, 1, 0}, // idle disk
	}
	if got := q.Pick(options, 1e6); got != 1 {
		t.Fatalf("Pick = %d, want 1 (idle disk)", got)
	}
	// With no queued work the tie breaks toward the lower index.
	if got := NewQueue(a).Pick(options, 1e6); got != 0 {
		t.Fatalf("idle Pick = %d, want 0 (tie to lower index)", got)
	}
}

// TestQueuePickIsPredictionOnly: Pick and MeanDiskTime must not consume the
// array's jitter RNGs — a seeded simulation serves identical times whether
// or not a planner consulted them in between.
func TestQueuePickIsPredictionOnly(t *testing.T) {
	cfg := DefaultConfig() // jitter on: RNG consumption would diverge
	plain := MustArray(4, cfg, 11)
	probed := MustArray(4, cfg, 11)
	qp := NewQueue(probed)
	options := [][]int{{1, 0, 0, 0}, {0, 1, 1, 0}}
	for i := 0; i < 50; i++ {
		qp.Pick(options, 1e6)
		probed.MeanDiskTime(i%4, 3, 1e6)
		a := plain.DiskTime(i%4, 2, 1e6)
		b := probed.DiskTime(i%4, 2, 1e6)
		if a != b {
			t.Fatalf("access %d: %v vs %v — prediction consumed jitter randomness", i, a, b)
		}
	}
}

// TestQueuePickLowersTailLatency: replaying an open-loop workload where each
// request may choose between two recovery options, picking by live queue
// depth must beat blindly taking option 0 on P99 — the load-aware planner's
// reason to exist.
func TestQueuePickLowersTailLatency(t *testing.T) {
	const n, disks = 300, 6
	mkOptions := func(i int) [][]int {
		// Every request could read from disk 0 (option 0, the "default"
		// survivor) or from a rotating alternative — mimicking degraded
		// reads with a recovery-set choice.
		alt := make([]int, disks)
		alt[1+i%(disks-1)] = 1
		first := make([]int, disks)
		first[0] = 1
		return [][]int{first, alt}
	}
	run := func(pick bool) QueueStats {
		q := NewQueue(MustArray(disks, DefaultConfig(), 12))
		comps := make([]Completion, n)
		payloads := make([]int, n)
		for i := 0; i < n; i++ {
			q.Advance(time.Duration(i) * 3 * time.Millisecond)
			opts := mkOptions(i)
			choice := 0
			if pick {
				choice = q.Pick(opts, 1e6)
			}
			comps[i] = q.Offer(opts[choice], 1e6)
			comps[i].ID = i
			payloads[i] = 1e6
		}
		stats, err := Summarize(comps, payloads)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	blind := run(false)
	aware := run(true)
	if aware.P99Latency >= blind.P99Latency {
		t.Fatalf("load-aware P99 %v not below blind %v", aware.P99Latency, blind.P99Latency)
	}
	if aware.MeanLatency >= blind.MeanLatency {
		t.Fatalf("load-aware mean %v not below blind %v", aware.MeanLatency, blind.MeanLatency)
	}
}

func BenchmarkSimulateQueued(b *testing.B) {
	a := MustArray(10, DefaultConfig(), 7)
	reqs := make([]Request, 1000)
	for i := range reqs {
		reqs[i] = Request{ID: i, Arrival: time.Duration(i) * time.Millisecond,
			Loads: []int{1, 1, 1, 1, 1, 1, 1, 1, 0, 0}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.SimulateQueued(reqs, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}
