package disksim

import (
	"fmt"
	"math"
	"time"
)

// Sample is one measured device access: how long a read of ElemBytes took
// end to end on a real backing device.
type Sample struct {
	ElemBytes int
	Latency   time.Duration
}

// Calibrate fits the simulator's affine latency model
//
//	latency = Positioning + elemBytes / bandwidth
//
// to real measurements by ordinary least squares over (elemBytes, latency)
// pairs — the file backend's benchmark feeds it per-element read timings and
// gets back a Config whose simulated array predicts that device. Jitter
// fields are set from the residual spread around the fit (relative
// half-width, clamped to the simulator's [0,1) domain).
//
// Degenerate inputs are clamped rather than failed: a non-positive fitted
// slope (latency not growing with size — measurement noise on a cached or
// very fast device) falls back to attributing the mean latency entirely to
// positioning with the default bandwidth, and a negative intercept (pure
// streaming device) to zero positioning with the fitted marginal bandwidth.
func Calibrate(samples []Sample) (Config, error) {
	if len(samples) < 2 {
		return Config{}, fmt.Errorf("disksim: calibration needs at least 2 samples, got %d", len(samples))
	}
	var sumX, sumY, sumXX, sumXY float64
	for _, s := range samples {
		x := float64(s.ElemBytes)
		y := s.Latency.Seconds()
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
	}
	n := float64(len(samples))
	meanX, meanY := sumX/n, sumY/n
	varX := sumXX/n - meanX*meanX

	cfg := DefaultConfig()
	var slope, intercept float64 // seconds per byte, seconds
	if varX <= 0 {
		// All samples share one element size: the split between positioning
		// and transfer is unidentifiable. Keep the default bandwidth where
		// it fits under the mean latency (the excess becomes positioning);
		// if even pure transfer at the default rate over-predicts, attribute
		// everything to transfer so the mean is still reproduced exactly.
		slope = 1 / (cfg.BandwidthMBps * 1e6)
		if meanX > 0 && slope > meanY/meanX {
			slope = meanY / meanX
		}
		intercept = meanY - slope*meanX
	} else {
		slope = (sumXY/n - meanX*meanY) / varX
		intercept = meanY - slope*meanX
	}
	if slope <= 0 {
		slope = 1 / (cfg.BandwidthMBps * 1e6)
		intercept = meanY - slope*meanX
	}
	if intercept < 0 {
		intercept = 0
	}
	cfg.Positioning = time.Duration(intercept * float64(time.Second))
	cfg.BandwidthMBps = 1 / (slope * 1e6)

	// Jitter: relative spread of the residuals around the fitted line.
	var maxRel float64
	for _, s := range samples {
		pred := intercept + slope*float64(s.ElemBytes)
		if pred <= 0 {
			continue
		}
		if rel := math.Abs(s.Latency.Seconds()-pred) / pred; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.95 {
		maxRel = 0.95
	}
	cfg.PositioningJitter = maxRel
	cfg.BandwidthJitter = maxRel
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("disksim: calibration produced invalid config: %w", err)
	}
	return cfg, nil
}

// CalibrationError reports how well cfg's noise-free latency model predicts
// the samples: the mean absolute relative error of
// Positioning + elemBytes/bandwidth against each measured latency. This is
// the documented error bound of a calibration — benchmarks record it next
// to the fitted constants.
func CalibrationError(cfg Config, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		pred := cfg.Positioning.Seconds() + float64(s.ElemBytes)/(cfg.BandwidthMBps*1e6)
		meas := s.Latency.Seconds()
		if meas <= 0 {
			continue
		}
		sum += math.Abs(pred-meas) / meas
	}
	return sum / float64(len(samples))
}
