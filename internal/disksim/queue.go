package disksim

import (
	"fmt"
	"sort"
	"time"
)

// Request is one read request offered to the queued simulator: it arrives at
// Arrival and needs loads[d] element accesses on each disk d.
type Request struct {
	ID      int
	Arrival time.Duration
	Loads   []int
}

// Completion reports one simulated request outcome.
type Completion struct {
	ID     int
	Start  time.Duration // arrival time
	Finish time.Duration // when the last disk access completed
}

// Latency returns the request's response time (queueing + service).
func (c Completion) Latency() time.Duration { return c.Finish - c.Start }

// SimulateQueued runs an open-loop simulation of concurrent requests over
// the array: each disk serves its accesses FIFO in request-arrival order,
// one access at a time; a request completes when its last access finishes.
//
// This extends the paper's serial-trial methodology to concurrent load —
// under contention, load imbalance hurts twice: a hot disk both slows its
// own request and queues behind earlier requests. The returned completions
// are ordered by request ID.
func (a *Array) SimulateQueued(requests []Request, elemBytes int) ([]Completion, error) {
	for _, r := range requests {
		if len(r.Loads) != len(a.rngs) {
			return nil, fmt.Errorf("disksim: request %d has %d loads for %d disks", r.ID, len(r.Loads), len(a.rngs))
		}
		if r.Arrival < 0 {
			return nil, fmt.Errorf("disksim: request %d has negative arrival", r.ID)
		}
	}
	// Process in arrival order (stable for ties by ID).
	order := make([]int, len(requests))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		rx, ry := requests[order[x]], requests[order[y]]
		if rx.Arrival != ry.Arrival {
			return rx.Arrival < ry.Arrival
		}
		return rx.ID < ry.ID
	})

	free := make([]time.Duration, len(a.rngs)) // when each disk becomes idle
	out := make([]Completion, 0, len(requests))
	for _, idx := range order {
		r := requests[idx]
		finish := r.Arrival
		for d, l := range r.Loads {
			if l == 0 {
				continue
			}
			start := r.Arrival
			if free[d] > start {
				start = free[d]
			}
			end := start + a.DiskTime(d, l, elemBytes)
			free[d] = end
			if end > finish {
				finish = end
			}
		}
		out = append(out, Completion{ID: r.ID, Start: r.Arrival, Finish: finish})
	}
	sort.Slice(out, func(x, y int) bool { return out[x].ID < out[y].ID })
	return out, nil
}

// QueueStats aggregates a simulation run.
type QueueStats struct {
	Requests      int
	MeanLatency   time.Duration
	P99Latency    time.Duration
	MakespanTotal time.Duration // finish of the last request
	ThroughputMBs float64       // payload MB per second of makespan
}

// Summarize computes aggregate statistics; payloadBytes[i] is request i's
// useful payload (indexed by completion order, i.e. request ID order).
func Summarize(completions []Completion, payloadBytes []int) (QueueStats, error) {
	if len(completions) == 0 {
		return QueueStats{}, nil
	}
	if len(payloadBytes) != len(completions) {
		return QueueStats{}, fmt.Errorf("disksim: %d payloads for %d completions", len(payloadBytes), len(completions))
	}
	var stats QueueStats
	stats.Requests = len(completions)
	lat := make([]time.Duration, len(completions))
	var sum time.Duration
	var totalBytes int
	for i, c := range completions {
		lat[i] = c.Latency()
		sum += lat[i]
		if c.Finish > stats.MakespanTotal {
			stats.MakespanTotal = c.Finish
		}
		totalBytes += payloadBytes[i]
	}
	sort.Slice(lat, func(x, y int) bool { return lat[x] < lat[y] })
	stats.MeanLatency = sum / time.Duration(len(lat))
	stats.P99Latency = lat[(len(lat)*99)/100]
	if stats.MakespanTotal > 0 {
		stats.ThroughputMBs = float64(totalBytes) / 1e6 / stats.MakespanTotal.Seconds()
	}
	return stats, nil
}
