package disksim

import (
	"fmt"
	"sort"
	"time"
)

// Request is one read request offered to the queued simulator: it arrives at
// Arrival and needs loads[d] element accesses on each disk d.
type Request struct {
	ID      int
	Arrival time.Duration
	Loads   []int
}

// Completion reports one simulated request outcome.
type Completion struct {
	ID     int
	Start  time.Duration // arrival time
	Finish time.Duration // when the last disk access completed
}

// Latency returns the request's response time (queueing + service).
func (c Completion) Latency() time.Duration { return c.Finish - c.Start }

// SimulateQueued runs an open-loop simulation of concurrent requests over
// the array: each disk serves its accesses FIFO in request-arrival order,
// one access at a time; a request completes when its last access finishes.
//
// This extends the paper's serial-trial methodology to concurrent load —
// under contention, load imbalance hurts twice: a hot disk both slows its
// own request and queues behind earlier requests. The returned completions
// are ordered by request ID.
func (a *Array) SimulateQueued(requests []Request, elemBytes int) ([]Completion, error) {
	for _, r := range requests {
		if len(r.Loads) != len(a.rngs) {
			return nil, fmt.Errorf("disksim: request %d has %d loads for %d disks", r.ID, len(r.Loads), len(a.rngs))
		}
		if r.Arrival < 0 {
			return nil, fmt.Errorf("disksim: request %d has negative arrival", r.ID)
		}
	}
	// Process in arrival order (stable for ties by ID).
	order := make([]int, len(requests))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		rx, ry := requests[order[x]], requests[order[y]]
		if rx.Arrival != ry.Arrival {
			return rx.Arrival < ry.Arrival
		}
		return rx.ID < ry.ID
	})

	free := make([]time.Duration, len(a.rngs)) // when each disk becomes idle
	out := make([]Completion, 0, len(requests))
	for _, idx := range order {
		r := requests[idx]
		finish := r.Arrival
		for d, l := range r.Loads {
			if l == 0 {
				continue
			}
			start := r.Arrival
			if free[d] > start {
				start = free[d]
			}
			end := start + a.DiskTime(d, l, elemBytes)
			free[d] = end
			if end > finish {
				finish = end
			}
		}
		out = append(out, Completion{ID: r.ID, Start: r.Arrival, Finish: finish})
	}
	sort.Slice(out, func(x, y int) bool { return out[x].ID < out[y].ID })
	return out, nil
}

// MeanDiskTime is the deterministic expectation of DiskTime: per access,
// the mean positioning cost plus the mean transfer time at the disk's rated
// (speed-scaled) bandwidth. It never consumes the array's jitter RNGs, so
// planners can predict with it mid-simulation without perturbing the
// schedule a seeded run would otherwise produce.
func (a *Array) MeanDiskTime(d, load, elemBytes int) time.Duration {
	if d < 0 || d >= len(a.rngs) {
		panic(fmt.Sprintf("disksim: disk %d out of [0,%d)", d, len(a.rngs)))
	}
	if load < 0 || elemBytes < 0 {
		panic(fmt.Sprintf("disksim: negative load %d or size %d", load, elemBytes))
	}
	factor := 1.0
	if a.speed != nil {
		factor = a.speed[d]
	}
	bw := a.cfg.BandwidthMBps * 1e6 * factor // bytes/s
	xfer := time.Duration(float64(elemBytes) / bw * float64(time.Second))
	return time.Duration(load) * (a.cfg.Positioning + xfer)
}

// Queue tracks live per-disk busy horizons over an array — the queue-depth
// feedback signal the fan-out read path's load-aware planner models. Offer
// admits a request's disk loads at the current time and returns its
// simulated completion; Depths exposes each disk's outstanding work; Pick
// scores alternative load vectors (e.g. candidate degraded recovery sets)
// against the current depths using the deterministic mean cost model, so
// source selection avoids momentarily deep queues without consuming any
// jitter randomness.
type Queue struct {
	a    *Array
	free []time.Duration // when each disk drains its queued work
	now  time.Duration
}

// NewQueue returns an empty queue over the array starting at time zero.
func NewQueue(a *Array) *Queue {
	return &Queue{a: a, free: make([]time.Duration, a.Disks())}
}

// Advance moves the clock to now (monotonic; earlier values are ignored).
func (q *Queue) Advance(now time.Duration) {
	if now > q.now {
		q.now = now
	}
}

// Now returns the queue's current clock.
func (q *Queue) Now() time.Duration { return q.now }

// Depths returns each disk's outstanding queued service time at the current
// clock — zero for an idle disk.
func (q *Queue) Depths() []time.Duration {
	out := make([]time.Duration, len(q.free))
	for d, f := range q.free {
		if f > q.now {
			out[d] = f - q.now
		}
	}
	return out
}

// Offer admits one request placing loads[d] element accesses on each disk d
// at the current clock, charging each disk's queue with its (jittered)
// service time. It returns the request's completion time: when the last of
// its disks drains.
func (q *Queue) Offer(loads []int, elemBytes int) Completion {
	if len(loads) != len(q.free) {
		panic(fmt.Sprintf("disksim: got %d loads for %d disks", len(loads), len(q.free)))
	}
	finish := q.now
	for d, l := range loads {
		if l == 0 {
			continue
		}
		start := q.now
		if q.free[d] > start {
			start = q.free[d]
		}
		end := start + q.a.DiskTime(d, l, elemBytes)
		q.free[d] = end
		if end > finish {
			finish = end
		}
	}
	return Completion{Start: q.now, Finish: finish}
}

// Pick returns the index of the load vector predicted to complete first
// given the current queue depths, breaking ties toward the lower index. The
// prediction uses MeanDiskTime, so calling Pick never changes what a seeded
// simulation subsequently serves.
func (q *Queue) Pick(options [][]int, elemBytes int) int {
	best, bestT := -1, time.Duration(0)
	for i, loads := range options {
		if len(loads) != len(q.free) {
			panic(fmt.Sprintf("disksim: option %d has %d loads for %d disks", i, len(loads), len(q.free)))
		}
		var finish time.Duration
		for d, l := range loads {
			if l == 0 {
				continue
			}
			start := q.now
			if q.free[d] > start {
				start = q.free[d]
			}
			if end := start + q.a.MeanDiskTime(d, l, elemBytes); end > finish {
				finish = end
			}
		}
		if best < 0 || finish < bestT {
			best, bestT = i, finish
		}
	}
	return best
}

// QueueStats aggregates a simulation run.
type QueueStats struct {
	Requests      int
	MeanLatency   time.Duration
	P99Latency    time.Duration
	MakespanTotal time.Duration // finish of the last request
	ThroughputMBs float64       // payload MB per second of makespan
}

// Summarize computes aggregate statistics; payloadBytes[i] is request i's
// useful payload (indexed by completion order, i.e. request ID order).
func Summarize(completions []Completion, payloadBytes []int) (QueueStats, error) {
	if len(completions) == 0 {
		return QueueStats{}, nil
	}
	if len(payloadBytes) != len(completions) {
		return QueueStats{}, fmt.Errorf("disksim: %d payloads for %d completions", len(payloadBytes), len(completions))
	}
	var stats QueueStats
	stats.Requests = len(completions)
	lat := make([]time.Duration, len(completions))
	var sum time.Duration
	var totalBytes int
	for i, c := range completions {
		lat[i] = c.Latency()
		sum += lat[i]
		if c.Finish > stats.MakespanTotal {
			stats.MakespanTotal = c.Finish
		}
		totalBytes += payloadBytes[i]
	}
	sort.Slice(lat, func(x, y int) bool { return lat[x] < lat[y] })
	stats.MeanLatency = sum / time.Duration(len(lat))
	stats.P99Latency = lat[(len(lat)*99)/100]
	if stats.MakespanTotal > 0 {
		stats.ThroughputMBs = float64(totalBytes) / 1e6 / stats.MakespanTotal.Seconds()
	}
	return stats, nil
}
