// Package disksim models the timing behaviour of the paper's testbed — a
// 16-disk array of Seagate Savvio 10K.3 drives — well enough to reproduce
// the read-performance *shape* the paper reports.
//
// The paper's central mechanism is purely about load distribution: a read
// completes when the slowest participating disk finishes, and the slowest
// disk is usually the most loaded one (§III-B). The simulator therefore
// models each disk as a serial device with per-access positioning time
// (seek + rotational latency, with jitter) followed by a sequential
// transfer at the disk's bandwidth (with jitter), and a request's service
// time as the maximum over the participating disks:
//
//	T(request) = max_d Σ_{i<load_d} (position_i + elemBytes/bandwidth_d)
//
// Randomness is fully seeded so experiments are reproducible; per-disk RNG
// streams keep timing independent across disks.
package disksim

import (
	"fmt"
	"math/rand"
	"time"
)

// Config describes one disk model. The zero value is invalid; use
// DefaultConfig (a 10K-rpm SAS profile) as a starting point.
type Config struct {
	// Positioning is the mean time to position the head before each
	// element access (seek + rotational latency).
	Positioning time.Duration
	// PositioningJitter is the relative half-width of the uniform jitter
	// applied per access: actual = Positioning × (1 ± J).
	PositioningJitter float64
	// BandwidthMBps is the mean sequential transfer rate in MB/s
	// (1 MB = 1e6 bytes, matching how drive vendors and the paper quote
	// speeds).
	BandwidthMBps float64
	// BandwidthJitter is the relative half-width of the uniform jitter
	// applied per access to the transfer rate.
	BandwidthJitter float64
}

// DefaultConfig approximates the paper's testbed as observed end-to-end:
// Savvio 10K.3 SAS drives (~3 ms rotational + ~4 ms seek, ~100 MB/s raw
// sustained rate) behind a storage stack whose measured per-element service
// cost is considerably higher than the raw drive numbers — the paper's
// aggregate read speeds top out around 165 MB/s for multi-disk parallel
// reads of 1 MB elements. A 15 ms effective positioning time and 50 MB/s
// effective per-disk transfer reproduce that measured envelope (see
// EXPERIMENTS.md for the calibration); only relative comparisons between
// layout forms are claimed, and those are insensitive to this choice (the
// BenchmarkAblationDiskModel ablation varies it).
func DefaultConfig() Config {
	return Config{
		Positioning:       15 * time.Millisecond,
		PositioningJitter: 0.4,
		BandwidthMBps:     50,
		BandwidthJitter:   0.15,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Positioning < 0 {
		return fmt.Errorf("disksim: negative positioning time %v", c.Positioning)
	}
	if c.BandwidthMBps <= 0 {
		return fmt.Errorf("disksim: bandwidth must be positive, got %v", c.BandwidthMBps)
	}
	if c.PositioningJitter < 0 || c.PositioningJitter >= 1 {
		return fmt.Errorf("disksim: positioning jitter %v out of [0,1)", c.PositioningJitter)
	}
	if c.BandwidthJitter < 0 || c.BandwidthJitter >= 1 {
		return fmt.Errorf("disksim: bandwidth jitter %v out of [0,1)", c.BandwidthJitter)
	}
	return nil
}

// Array simulates a set of disks sharing one model, optionally with fixed
// per-disk speed factors (heterogeneous arrays).
type Array struct {
	cfg   Config
	rngs  []*rand.Rand
	speed []float64 // per-disk bandwidth multiplier; nil = homogeneous
}

// NewArray creates an array of n identical disks with the given model,
// seeding each disk's jitter stream deterministically from seed.
func NewArray(n int, cfg Config, seed int64) (*Array, error) {
	if n < 1 {
		return nil, fmt.Errorf("disksim: need at least one disk, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg, rngs: make([]*rand.Rand, n)}
	for d := range a.rngs {
		a.rngs[d] = rand.New(rand.NewSource(seed + int64(d)*0x9E3779B9))
	}
	return a, nil
}

// NewHeterogeneousArray is NewArray with per-disk bandwidth diversity: disk
// d's transfer rate is permanently scaled by a seeded uniform factor in
// [1-spread, 1+spread] (spread in [0,1)). Mixed-generation arrays are the
// norm in practice, and the paper's "the most loaded disk is usually the
// slowest" premise gets sharper the more the disks differ.
func NewHeterogeneousArray(n int, cfg Config, seed int64, spread float64) (*Array, error) {
	if spread < 0 || spread >= 1 {
		return nil, fmt.Errorf("disksim: heterogeneity spread %v out of [0,1)", spread)
	}
	a, err := NewArray(n, cfg, seed)
	if err != nil {
		return nil, err
	}
	mix := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	a.speed = make([]float64, n)
	for d := range a.speed {
		a.speed[d] = 1 + spread*(2*mix.Float64()-1)
	}
	return a, nil
}

// MustArray is NewArray for known-good arguments; it panics on error.
func MustArray(n int, cfg Config, seed int64) *Array {
	a, err := NewArray(n, cfg, seed)
	if err != nil {
		panic(err)
	}
	return a
}

// Disks returns the number of disks in the array.
func (a *Array) Disks() int { return len(a.rngs) }

// Config returns the disk model in use.
func (a *Array) Config() Config { return a.cfg }

func (a *Array) jitter(d int, half float64) float64 {
	if half == 0 {
		return 1
	}
	return 1 + half*(2*a.rngs[d].Float64()-1)
}

// DiskTime returns the simulated time for disk d to serve `load` element
// accesses of elemBytes each: per access, one positioning operation plus a
// sequential transfer. A zero load takes zero time.
func (a *Array) DiskTime(d, load, elemBytes int) time.Duration {
	if d < 0 || d >= len(a.rngs) {
		panic(fmt.Sprintf("disksim: disk %d out of [0,%d)", d, len(a.rngs)))
	}
	if load < 0 || elemBytes < 0 {
		panic(fmt.Sprintf("disksim: negative load %d or size %d", load, elemBytes))
	}
	factor := 1.0
	if a.speed != nil {
		factor = a.speed[d]
	}
	var total time.Duration
	for i := 0; i < load; i++ {
		pos := time.Duration(float64(a.cfg.Positioning) * a.jitter(d, a.cfg.PositioningJitter))
		bw := a.cfg.BandwidthMBps * 1e6 * factor * a.jitter(d, a.cfg.BandwidthJitter) // bytes/s
		xfer := time.Duration(float64(elemBytes) / bw * float64(time.Second))
		total += pos + xfer
	}
	return total
}

// ServeRead returns the simulated service time of a parallel read request
// that places loads[d] element accesses on disk d. The request completes
// when the slowest disk finishes. loads must have one entry per disk.
func (a *Array) ServeRead(loads []int, elemBytes int) time.Duration {
	if len(loads) != len(a.rngs) {
		panic(fmt.Sprintf("disksim: got %d loads for %d disks", len(loads), len(a.rngs)))
	}
	var worst time.Duration
	for d, l := range loads {
		if l == 0 {
			continue
		}
		if t := a.DiskTime(d, l, elemBytes); t > worst {
			worst = t
		}
	}
	return worst
}

// SpeedMBps converts a payload size and service time into the paper's
// read-speed metric (MB/s, 1 MB = 1e6 bytes).
func SpeedMBps(payloadBytes int, t time.Duration) float64 {
	if t <= 0 {
		return 0
	}
	return float64(payloadBytes) / 1e6 / t.Seconds()
}
