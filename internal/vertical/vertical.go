// Package vertical implements the vertical erasure codes the EC-FRM paper
// discusses as motivation (§II-B, §III-A): X-Code and WEAVER. Vertical codes
// store parity on every disk, so normal reads naturally spread across the
// whole array — but they cannot combine high fault tolerance with low
// storage overhead, and they constrain the disk count (X-Code needs a prime
// number of disks; WEAVER burns ≥50% capacity). EC-FRM exists to get the
// read behaviour of vertical codes without those costs; this package
// provides the baselines that make the comparison concrete.
//
// Both codes are declared over the internal/xorcode engine, which derives
// encoding, reconstruction, and exact decodability analysis from the parity
// equations.
package vertical

import (
	"fmt"

	"repro/internal/xorcode"
)

// Code is an XOR-linear array code (see internal/xorcode).
type Code = xorcode.Code

// CellRef addresses a cell in the (rows × disks) array.
type CellRef = xorcode.CellRef

// ErrUnrecoverable is returned when a failure pattern cannot be decoded.
var ErrUnrecoverable = xorcode.ErrUnrecoverable

// ErrShardSize flags missing or ragged cell data.
var ErrShardSize = xorcode.ErrShardSize

// NewXCode constructs the X-Code for a prime number of disks p ≥ 5
// (Xu & Bruck 1999): a p×p array whose first p-2 rows are data; row p-2
// holds slope-1 diagonal parities and row p-1 slope-(-1) anti-diagonal
// parities. Any 2 full-disk failures are recoverable, with optimal update
// complexity.
func NewXCode(p int) (*Code, error) {
	if p < 5 || !isPrime(p) {
		return nil, fmt.Errorf("vertical: X-Code needs a prime disk count ≥ 5, got %d", p)
	}
	var data []CellRef
	for r := 0; r < p-2; r++ {
		for d := 0; d < p; d++ {
			data = append(data, CellRef{Row: r, Disk: d})
		}
	}
	var eqs []xorcode.Equation
	for i := 0; i < p; i++ {
		var diag, anti []CellRef
		for k := 0; k < p-2; k++ {
			diag = append(diag, CellRef{Row: k, Disk: mod(i+k+2, p)})
			anti = append(anti, CellRef{Row: k, Disk: mod(i-k-2, p)})
		}
		eqs = append(eqs,
			xorcode.Equation{Target: CellRef{Row: p - 2, Disk: i}, Sources: diag},
			xorcode.Equation{Target: CellRef{Row: p - 1, Disk: i}, Sources: anti},
		)
	}
	return xorcode.New(fmt.Sprintf("X-Code(%d)", p), p, p, data, eqs)
}

// NewWeaver constructs the WEAVER(n, k=2, t=2) code (Hafner 2005): n disks,
// each holding one data cell (row 0) and one parity cell (row 1); the parity
// on disk i is the XOR of the data of disks i-1 and i-2 (mod n). Tolerates
// any 2 disk failures at 50% storage efficiency — the fixed-overhead cost
// the paper holds against vertical codes.
func NewWeaver(n int) (*Code, error) {
	if n < 4 {
		return nil, fmt.Errorf("vertical: WEAVER(k=2,t=2) needs ≥ 4 disks, got %d", n)
	}
	var data []CellRef
	var eqs []xorcode.Equation
	for d := 0; d < n; d++ {
		data = append(data, CellRef{Row: 0, Disk: d})
	}
	for d := 0; d < n; d++ {
		eqs = append(eqs, xorcode.Equation{
			Target: CellRef{Row: 1, Disk: d},
			Sources: []CellRef{
				{Row: 0, Disk: mod(d-1, n)},
				{Row: 0, Disk: mod(d-2, n)},
			},
		})
	}
	return xorcode.New(fmt.Sprintf("WEAVER(%d,2,2)", n), 2, n, data, eqs)
}

func mod(a, p int) int { return ((a % p) + p) % p }

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for i := 2; i*i <= n; i++ {
		if n%i == 0 {
			return false
		}
	}
	return true
}
