package vertical

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// encodeRandom builds a fully encoded array with random data.
func encodeRandom(t testing.TB, c *Code, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cells := make([][]byte, c.Rows()*c.Disks())
	for _, ref := range c.DataRefs() {
		b := make([]byte, size)
		rng.Read(b)
		cells[ref.Row*c.Disks()+ref.Disk] = b
	}
	if err := c.Encode(cells); err != nil {
		t.Fatal(err)
	}
	return cells
}

func eraseDisks(c *Code, cells [][]byte, disks []int) [][]byte {
	failed := make(map[int]bool)
	for _, d := range disks {
		failed[d] = true
	}
	out := make([][]byte, len(cells))
	for i, cell := range cells {
		if !failed[i%c.Disks()] {
			out[i] = cell
		}
	}
	return out
}

func TestNewXCodeValidation(t *testing.T) {
	for _, p := range []int{0, 3, 4, 6, 9} {
		if _, err := NewXCode(p); err == nil {
			t.Errorf("NewXCode(%d) succeeded", p)
		}
	}
	c, err := NewXCode(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "X-Code(5)" || c.Rows() != 5 || c.Disks() != 5 {
		t.Fatalf("shape wrong: %s %d×%d", c.Name(), c.Rows(), c.Disks())
	}
	if c.DataCells() != 15 { // (p-2)·p
		t.Fatalf("data cells = %d", c.DataCells())
	}
	// Storage overhead p/(p-2).
	if got := c.StorageOverhead(); got < 1.66 || got > 1.67 {
		t.Fatalf("overhead = %v, want 5/3", got)
	}
}

func TestNewWeaverValidation(t *testing.T) {
	for _, n := range []int{0, 3} {
		if _, err := NewWeaver(n); err == nil {
			t.Errorf("NewWeaver(%d) succeeded", n)
		}
	}
	c, err := NewWeaver(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.StorageOverhead() != 2.0 {
		t.Fatalf("WEAVER overhead = %v, want 2.0 (50%% efficiency)", c.StorageOverhead())
	}
}

func TestXCodeParityDefinition(t *testing.T) {
	// Spot-check the diagonal structure for p=5: parity (3,0) must be the
	// XOR of data cells (k, (0+k+2) mod 5) for k=0,1,2.
	c, _ := NewXCode(5)
	cells := encodeRandom(t, c, 16, 1)
	want := make([]byte, 16)
	for k := 0; k < 3; k++ {
		src := cells[k*5+(k+2)%5]
		for i := range want {
			want[i] ^= src[i]
		}
	}
	if !bytes.Equal(cells[3*5+0], want) {
		t.Fatal("diagonal parity (3,0) wrong")
	}
	// Anti-diagonal: parity (4,0) = XOR of (k, (0-k-2) mod 5).
	want = make([]byte, 16)
	for k := 0; k < 3; k++ {
		src := cells[k*5+mod(-k-2, 5)]
		for i := range want {
			want[i] ^= src[i]
		}
	}
	if !bytes.Equal(cells[4*5+0], want) {
		t.Fatal("anti-diagonal parity (4,0) wrong")
	}
}

func TestXCodeAllDoubleDiskFailures(t *testing.T) {
	for _, p := range []int{5, 7, 11} {
		c, err := NewXCode(p)
		if err != nil {
			t.Fatal(err)
		}
		cells := encodeRandom(t, c, 24, int64(p))
		for a := 0; a < p; a++ {
			for b := a + 1; b < p; b++ {
				broken := eraseDisks(c, cells, []int{a, b})
				if err := c.ReconstructDisks(broken, []int{a, b}); err != nil {
					t.Fatalf("X-Code(%d) disks {%d,%d}: %v", p, a, b, err)
				}
				for i := range cells {
					if !bytes.Equal(broken[i], cells[i]) {
						t.Fatalf("X-Code(%d) disks {%d,%d}: cell %d mismatch", p, a, b, i)
					}
				}
			}
		}
	}
}

func TestXCodeSingleDiskFailure(t *testing.T) {
	c, _ := NewXCode(7)
	cells := encodeRandom(t, c, 8, 2)
	for d := 0; d < 7; d++ {
		broken := eraseDisks(c, cells, []int{d})
		if err := c.ReconstructDisks(broken, []int{d}); err != nil {
			t.Fatalf("disk %d: %v", d, err)
		}
		for i := range cells {
			if !bytes.Equal(broken[i], cells[i]) {
				t.Fatalf("disk %d cell %d mismatch", d, i)
			}
		}
	}
}

func TestXCodeTripleFailureFails(t *testing.T) {
	c, _ := NewXCode(5)
	if c.CanRecover([]int{0, 1, 2}) {
		t.Fatal("X-Code must not recover 3 disk failures")
	}
	cells := encodeRandom(t, c, 8, 3)
	broken := eraseDisks(c, cells, []int{0, 1, 2})
	if err := c.ReconstructDisks(broken, []int{0, 1, 2}); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestWeaverAllDoubleDiskFailures(t *testing.T) {
	for _, n := range []int{4, 5, 8, 10} {
		c, err := NewWeaver(n)
		if err != nil {
			t.Fatal(err)
		}
		cells := encodeRandom(t, c, 16, int64(n))
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				broken := eraseDisks(c, cells, []int{a, b})
				if err := c.ReconstructDisks(broken, []int{a, b}); err != nil {
					t.Fatalf("WEAVER(%d) disks {%d,%d}: %v", n, a, b, err)
				}
				for i := range cells {
					if !bytes.Equal(broken[i], cells[i]) {
						t.Fatalf("WEAVER(%d) disks {%d,%d}: cell %d mismatch", n, a, b, i)
					}
				}
			}
		}
	}
}

func TestWeaverTripleFailureFails(t *testing.T) {
	c, _ := NewWeaver(6)
	if c.CanRecover([]int{1, 2, 3}) {
		t.Fatal("WEAVER(k=2,t=2) must not recover 3 failures")
	}
}

func TestCanRecoverBounds(t *testing.T) {
	c, _ := NewWeaver(5)
	if c.CanRecover([]int{-1}) || c.CanRecover([]int{5}) {
		t.Fatal("out-of-range disks must be unrecoverable")
	}
	if !c.CanRecover(nil) {
		t.Fatal("no failures must be recoverable")
	}
}

func TestEncodeErrors(t *testing.T) {
	c, _ := NewWeaver(4)
	if err := c.Encode(make([][]byte, 3)); !errors.Is(err, ErrShardSize) {
		t.Fatalf("short cells: %v", err)
	}
	cells := make([][]byte, 8)
	cells[0] = []byte{1}
	// remaining data cells nil
	if err := c.Encode(cells); !errors.Is(err, ErrShardSize) {
		t.Fatalf("nil data: %v", err)
	}
	cells = make([][]byte, 8)
	for d := 0; d < 4; d++ {
		cells[d] = make([]byte, 4)
	}
	cells[1] = make([]byte, 5)
	if err := c.Encode(cells); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged data: %v", err)
	}
}

func TestReconstructErrors(t *testing.T) {
	c, _ := NewWeaver(4)
	if err := c.ReconstructDisks(make([][]byte, 3), []int{0}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("short cells: %v", err)
	}
	cells := make([][]byte, 8)
	if err := c.ReconstructDisks(cells, []int{9}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("bad disk: %v", err)
	}
	if err := c.ReconstructDisks(cells, []int{0}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("all-nil cells: %v", err)
	}
	// No failures: no-op.
	good := encodeRandom(t, c, 4, 9)
	if err := c.ReconstructDisks(good, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataRefsRowMajorAndComplete(t *testing.T) {
	c, _ := NewXCode(5)
	refs := c.DataRefs()
	if len(refs) != c.DataCells() {
		t.Fatalf("%d refs, want %d", len(refs), c.DataCells())
	}
	for i := 1; i < len(refs); i++ {
		a, b := refs[i-1], refs[i]
		if a.Row > b.Row || (a.Row == b.Row && a.Disk >= b.Disk) {
			t.Fatal("DataRefs not row-major")
		}
	}
}

// TestVerticalNormalReadSpread confirms the §III-A motivation: sequential
// data on a vertical code spreads across all disks like EC-FRM (that's the
// behaviour the framework borrows) — the cost is overhead/tolerance, not
// read balance.
func TestVerticalNormalReadSpread(t *testing.T) {
	c, _ := NewXCode(7)
	refs := c.DataRefs()
	loads := make([]int, c.Disks())
	for _, ref := range refs[:7] { // 7-element sequential read
		loads[ref.Disk]++
	}
	for d, l := range loads {
		if l != 1 {
			t.Fatalf("disk %d load %d; X-Code sequential read must spread evenly", d, l)
		}
	}
}

func BenchmarkXCodeEncode7(b *testing.B) {
	c, _ := NewXCode(7)
	cells := make([][]byte, c.Rows()*c.Disks())
	for _, ref := range c.DataRefs() {
		cells[ref.Row*c.Disks()+ref.Disk] = make([]byte, 64<<10)
	}
	b.SetBytes(int64(c.DataCells() * 64 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(cells); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXCodeDoubleRecovery(b *testing.B) {
	c, _ := NewXCode(7)
	cells := encodeRandom(b, c, 64<<10, 10)
	b.SetBytes(int64(2 * c.Rows() * 64 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		broken := eraseDisks(c, cells, []int{1, 4})
		if err := c.ReconstructDisks(broken, []int{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}
