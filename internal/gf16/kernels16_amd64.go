//go:build amd64

package gf16

// SIMD kernel selection for amd64. The assembly in kernels16_amd64.s
// implements the 4×4-bit split-table multiply for 16-bit symbols: the
// interleaved low/high symbol bytes are separated with word shifts and a
// saturating pack, each of the four nibbles selects from its own 16-entry
// product-byte table via PSHUFB (once for the product's low byte, once for
// its high byte), the eight shuffles XOR together, and byte unpacks
// re-interleave the result — a whole vector of GF(2^16) products per loop.

// Implemented in kernels16_amd64.s.
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)
func gf16MulSSSE3(lo, hi *[4][16]byte, dst, src *byte, n int)
func gf16MulAddSSSE3(lo, hi *[4][16]byte, dst, src *byte, n int)
func gf16MulAVX2(lo, hi *[4][16]byte, dst, src *byte, n int)
func gf16MulAddAVX2(lo, hi *[4][16]byte, dst, src *byte, n int)

var (
	hasSSSE3    bool
	hasAVX2     bool
	simdEnabled bool
)

func init() {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	hasSSSE3 = ecx1&(1<<9) != 0
	// AVX2 needs the CPU flag plus OS support for YMM state (OSXSAVE set and
	// XCR0 reporting XMM|YMM enabled).
	const osxsaveAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAVX == osxsaveAVX && maxID >= 7 {
		if xlo, _ := xgetbv0(); xlo&6 == 6 {
			_, ebx7, _, _ := cpuidex(7, 0)
			hasAVX2 = ebx7&(1<<5) != 0
		}
	}
	simdEnabled = hasSSSE3 || hasAVX2
}

// mulSliceSIMD computes dst = c·src with the vector kernel; the
// coefficient's tables are already fetched and len(dst) ≥ simdMin (callers
// dispatch). The vector body covers the largest 64- or 32-byte-aligned
// prefix; the word-parallel kernel finishes the tail.
func mulSliceSIMD(t *Tables, dst, src []byte) {
	var n int
	if hasAVX2 {
		n = len(dst) &^ 63
		gf16MulAVX2(&t.lo, &t.hi, &dst[0], &src[0], n)
	} else {
		n = len(dst) &^ 31
		gf16MulSSSE3(&t.lo, &t.hi, &dst[0], &src[0], n)
	}
	if n < len(dst) {
		mulSliceWord(t, dst[n:], src[n:])
	}
}

// mulAddSliceSIMD computes dst ^= c·src with the vector kernel; same
// contract as mulSliceSIMD.
func mulAddSliceSIMD(t *Tables, dst, src []byte) {
	var n int
	if hasAVX2 {
		n = len(dst) &^ 63
		gf16MulAddAVX2(&t.lo, &t.hi, &dst[0], &src[0], n)
	} else {
		n = len(dst) &^ 31
		gf16MulAddSSSE3(&t.lo, &t.hi, &dst[0], &src[0], n)
	}
	if n < len(dst) {
		mulAddSliceWord(t, dst[n:], src[n:])
	}
}
