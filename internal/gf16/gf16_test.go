package gf16

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mulSlow is an independent bitwise oracle.
func mulSlow(a, b uint16) uint16 {
	var prod uint32
	aa, bb := uint32(a), uint32(b)
	for bb != 0 {
		if bb&1 != 0 {
			prod ^= aa
		}
		aa <<= 1
		if aa&0x10000 != 0 {
			aa ^= Poly
		}
		bb >>= 1
	}
	return uint16(prod)
}

func TestMulAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200000; trial++ {
		a := uint16(rng.Intn(Order))
		b := uint16(rng.Intn(Order))
		if got, want := Mul(a, b), mulSlow(a, b); got != want {
			t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20000}
	if err := quick.Check(func(a, b uint16) bool { return Mul(a, b) == Mul(b, a) }, cfg); err != nil {
		t.Error("commutativity:", err)
	}
	if err := quick.Check(func(a, b, c uint16) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, cfg); err != nil {
		t.Error("associativity:", err)
	}
	if err := quick.Check(func(a, b, c uint16) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, cfg); err != nil {
		t.Error("distributivity:", err)
	}
	if err := quick.Check(func(a uint16) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1 && Div(1, a) == Inv(a)
	}, cfg); err != nil {
		t.Error("inverses:", err)
	}
}

func TestZeroHandling(t *testing.T) {
	if Mul(0, 7) != 0 || Mul(7, 0) != 0 || Div(0, 7) != 0 {
		t.Fatal("zero arithmetic wrong")
	}
	for name, fn := range map[string]func(){
		"Inv(0)":   func() { Inv(0) },
		"Div(x,0)": func() { Div(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExp(t *testing.T) {
	if Exp(0, 0) != 1 || Exp(0, 5) != 0 {
		t.Fatal("zero-base conventions wrong")
	}
	for _, base := range []uint16{2, 3, 0x1234} {
		acc := uint16(1)
		for e := 0; e < 100; e++ {
			if Exp(base, e) != acc {
				t.Fatalf("Exp(%#x,%d) wrong", base, e)
			}
			acc = Mul(acc, base)
		}
		if Mul(Exp(base, -7), Exp(base, 7)) != 1 {
			t.Fatal("negative exponent not inverse")
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]uint16, 300)
	dst := make([]uint16, 300)
	orig := make([]uint16, 300)
	for trial := 0; trial < 50; trial++ {
		c := uint16(rng.Intn(Order))
		for i := range src {
			src[i] = uint16(rng.Intn(Order))
			dst[i] = uint16(rng.Intn(Order))
		}
		copy(orig, dst)
		MulAddSlice(c, dst, src)
		for i := range dst {
			if dst[i] != orig[i]^Mul(c, src[i]) {
				t.Fatalf("trial %d index %d wrong", trial, i)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MulAddSlice(1, make([]uint16, 2), make([]uint16, 3))
}

func TestRSValidation(t *testing.T) {
	for _, p := range [][2]int{{0, 1}, {1, 0}, {65000, 2000}} {
		if _, err := NewRS(p[0], p[1]); err == nil {
			t.Errorf("NewRS(%v) succeeded", p)
		}
	}
}

func TestWideRSRoundTrip(t *testing.T) {
	// A stripe wider than GF(2^8) allows: 300 data + 20 parity shards.
	c, err := NewRS(300, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := make([][]uint16, 300)
	for i := range data {
		data[i] = make([]uint16, 16)
		for j := range data[i] {
			data[i][j] = uint16(rng.Intn(Order))
		}
	}
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]uint16{}, data...), parity...)
	// Erase 20 random shards (the maximum).
	shards := make([][]uint16, len(full))
	for i, s := range full {
		shards[i] = append([]uint16(nil), s...)
	}
	for _, e := range rng.Perm(320)[:20] {
		shards[e] = nil
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		for j := range shards[i] {
			if shards[i][j] != full[i][j] {
				t.Fatalf("shard %d symbol %d mismatch", i, j)
			}
		}
	}
}

func TestRSSmallAllPatterns(t *testing.T) {
	c, _ := NewRS(3, 2)
	rng := rand.New(rand.NewSource(4))
	data := make([][]uint16, 3)
	for i := range data {
		data[i] = []uint16{uint16(rng.Intn(Order)), uint16(rng.Intn(Order))}
	}
	parity, _ := c.Encode(data)
	full := append(append([][]uint16{}, data...), parity...)
	for mask := 1; mask < 32; mask++ {
		cnt := 0
		for i := 0; i < 5; i++ {
			if mask>>i&1 == 1 {
				cnt++
			}
		}
		if cnt > 2 {
			continue
		}
		shards := make([][]uint16, 5)
		for i := range shards {
			if mask>>i&1 == 0 {
				shards[i] = append([]uint16(nil), full[i]...)
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := range shards {
			for j := range shards[i] {
				if shards[i][j] != full[i][j] {
					t.Fatalf("mask %b shard %d mismatch", mask, i)
				}
			}
		}
	}
}

func TestRSTooManyErasures(t *testing.T) {
	c, _ := NewRS(3, 2)
	shards := make([][]uint16, 5)
	shards[3] = []uint16{1}
	shards[4] = []uint16{2}
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("3 erasures of (3,2) must fail")
	}
}

func TestRSEncodeErrors(t *testing.T) {
	c, _ := NewRS(2, 1)
	if _, err := c.Encode([][]uint16{{1}}); err == nil {
		t.Fatal("wrong shard count")
	}
	if _, err := c.Encode([][]uint16{{1}, nil}); err == nil {
		t.Fatal("nil shard")
	}
	if _, err := c.Encode([][]uint16{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged shards")
	}
}

func BenchmarkMulAddSlice16(b *testing.B) {
	src := make([]uint16, 1<<19)
	dst := make([]uint16, 1<<19)
	rng := rand.New(rand.NewSource(5))
	for i := range src {
		src[i] = uint16(rng.Intn(Order))
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x1234, dst, src)
	}
}
