package gf16

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mulSlow is an independent bitwise (shift-and-reduce) oracle.
func mulSlow(a, b uint16) uint16 {
	var prod uint32
	aa, bb := uint32(a), uint32(b)
	for bb != 0 {
		if bb&1 != 0 {
			prod ^= aa
		}
		aa <<= 1
		if aa&0x10000 != 0 {
			aa ^= Poly
		}
		bb >>= 1
	}
	return uint16(prod)
}

func TestMulAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200000; trial++ {
		a := uint16(rng.Intn(Order))
		b := uint16(rng.Intn(Order))
		if got, want := Mul(a, b), mulSlow(a, b); got != want {
			t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20000}
	if err := quick.Check(func(a, b uint16) bool { return Mul(a, b) == Mul(b, a) }, cfg); err != nil {
		t.Error("commutativity:", err)
	}
	if err := quick.Check(func(a, b, c uint16) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, cfg); err != nil {
		t.Error("associativity:", err)
	}
	if err := quick.Check(func(a, b, c uint16) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, cfg); err != nil {
		t.Error("distributivity:", err)
	}
	if err := quick.Check(func(a uint16) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1 && Div(1, a) == Inv(a)
	}, cfg); err != nil {
		t.Error("inverses:", err)
	}
}

func TestZeroHandling(t *testing.T) {
	if Mul(0, 7) != 0 || Mul(7, 0) != 0 || Div(0, 7) != 0 {
		t.Fatal("zero arithmetic wrong")
	}
	for name, fn := range map[string]func(){
		"Inv(0)":   func() { Inv(0) },
		"Div(x,0)": func() { Div(3, 0) },
		"Log(0)":   func() { Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExp(t *testing.T) {
	if Exp(0, 0) != 1 || Exp(0, 5) != 0 {
		t.Fatal("zero-base conventions wrong")
	}
	for _, base := range []uint16{2, 3, 0x1234} {
		acc := uint16(1)
		for e := 0; e < 100; e++ {
			if Exp(base, e) != acc {
				t.Fatalf("Exp(%#x,%d) wrong", base, e)
			}
			acc = Mul(acc, base)
		}
		if Mul(Exp(base, -7), Exp(base, 7)) != 1 {
			t.Fatal("negative exponent not inverse")
		}
	}
}

// TestGeneratorIsPrimitive verifies 2 generates the full multiplicative
// group, which the log/exp construction (and every Generator-based code
// construction upstream) silently depends on.
func TestGeneratorIsPrimitive(t *testing.T) {
	seen := make([]bool, Order)
	x := uint16(1)
	for i := 0; i < Order-1; i++ {
		if seen[x] {
			t.Fatalf("generator cycle repeats at exponent %d", i)
		}
		seen[x] = true
		if Generator(i) != x {
			t.Fatalf("Generator(%d) = %#x, want %#x", i, Generator(i), x)
		}
		x = mulSlow(x, generator)
	}
	if x != 1 {
		t.Fatal("generator order is not 65535")
	}
}

func TestLogGeneratorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10000; trial++ {
		a := uint16(1 + rng.Intn(Order-1))
		if Generator(Log(a)) != a {
			t.Fatalf("Generator(Log(%#x)) != %#x", a, a)
		}
	}
	if Generator(-1) != Generator(Order-2) {
		t.Fatal("negative Generator index wrong")
	}
}

func TestRowKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range []uint16{0, 1, 2, 0xff, 0x100, 0xabcd, 0xffff} {
		src := make([]uint16, 37)
		for i := range src {
			src[i] = uint16(rng.Intn(Order))
		}
		src[0] = 0 // zero symbols take a branch
		dst := make([]uint16, len(src))
		MulRow(c, dst, src)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("MulRow c=%#x i=%d: %#x != %#x", c, i, dst[i], Mul(c, src[i]))
			}
		}
		acc := make([]uint16, len(src))
		copy(acc, dst)
		MulAddRow(c, acc, src)
		for i := range src {
			if acc[i] != dst[i]^Mul(c, src[i]) {
				t.Fatalf("MulAddRow c=%#x i=%d mismatch", c, i)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MulRow(1, make([]uint16, 2), make([]uint16, 3))
}

func TestPackUnpackSymbols(t *testing.T) {
	sym := []uint16{0, 1, 0xff, 0x100, 0xabcd, 0xffff}
	b := PackSymbols(sym)
	if len(b) != len(sym)*SymbolBytes {
		t.Fatalf("packed length %d", len(b))
	}
	if b[8] != 0xcd || b[9] != 0xab {
		t.Fatal("packing is not little-endian")
	}
	got := UnpackSymbols(b)
	for i := range sym {
		if got[i] != sym[i] {
			t.Fatalf("round-trip broke at %d", i)
		}
	}
}
