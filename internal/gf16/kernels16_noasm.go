//go:build !amd64

package gf16

// Pure-Go build: no vector kernels, the word-parallel path is the fast path.
const simdEnabled = false

func mulSliceSIMD(t *Tables, dst, src []byte)    { mulSliceWord(t, dst, src) }
func mulAddSliceSIMD(t *Tables, dst, src []byte) { mulAddSliceWord(t, dst, src) }
