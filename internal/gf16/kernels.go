// Bulk slice kernels over GF(2^16) — the loops wide-stripe erasure coding
// actually spends its time in. Symbols are packed little-endian into byte
// slices, two bytes each, so these kernels speak the same [][]byte shard
// currency as the GF(2^8) ones and every consumer of internal/gf can widen
// without changing its buffer plumbing. Slice lengths must be even (whole
// symbols); the kernels panic otherwise.
//
// Three implementations coexist, selected per call by slice length and CPU,
// mirroring internal/gf's discipline:
//
//   - The *SIMD* kernels (amd64 with SSSE3/AVX2, see kernels16_amd64.go) use
//     the 4×4-bit split-table trick: a 16-bit symbol is four nibbles, and
//     c·x = c·n0 ^ c·(n1<<4) ^ c·(n2<<8) ^ c·(n3<<12), so eight 16-entry
//     byte tables (low/high product byte per nibble position) and eight
//     PSHUFBs produce a whole vector of products. The interleaved symbol
//     bytes are split into low/high-byte vectors with pack instructions and
//     re-interleaved with unpack ones on the way out.
//
//   - The *word-parallel* kernels process 8 bytes (4 symbols) per step in
//     portable Go, gathering pre-shifted uint32 products from four
//     per-coefficient byte-indexed tables (4 KiB per coefficient) so a word
//     of products is assembled with XORs alone — the same structure as gf8's
//     mulTable32 path.
//
//   - The *symbol-wise reference* kernels (…Ref) work straight off the
//     log/exp tables. They remain the source of truth: the faster kernels
//     fall back to them for short slices and tails, and the property/fuzz
//     tests cross-check every kernel against them.
//
// GF(2^16) has 65536 coefficients, so unlike gf8 the product tables cannot
// all be built at init (16 KiB × 65536 would be a gigabyte). Instead tables
// are built on first use of a coefficient and memoized in a lock-free
// pointer array: a generator matrix uses a small, fixed set of coefficients,
// so a long-running store pays each build exactly once and the hot paths
// stay allocation-free.
package gf16

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// wordMin is the slice length below which the word-parallel kernels hand the
// whole slice to the symbol-wise reference.
const wordMin = 16

// simdMin is the slice length below which the SIMD kernels are not worth the
// vector setup; such slices take the word-parallel path instead.
const simdMin = 64

// Tables holds every lookup table the kernels need for one coefficient:
// the eight 16-entry nibble tables the SIMD shuffle consumes (low and high
// product byte for each of the four nibble positions) and the pre-shifted
// word tables the portable kernel gathers from.
type Tables struct {
	// lo[j][v] and hi[j][v] are the low and high bytes of c·(v << 4j).
	lo [4][16]byte
	hi [4][16]byte
	// w[p][h][b] = uint32(c·(b << 8h)) << 16p: the product of byte b placed
	// at byte position h of its symbol, pre-shifted to symbol position p of
	// a uint32 pair. A uint64 (4 symbols) is assembled from two uint32
	// halves with 8 lookups, exactly like gf8's mulTable32 path.
	w [2][2][256]uint32
}

// tableCache memoizes one *Tables per coefficient. A flat array of atomic
// pointers (512 KiB of BSS) rather than a map: reads are lock-free and
// allocation-free, which the zero-allocation encode path requires, and
// concurrent builders for the same coefficient simply produce identical
// tables.
var tableCache [Order]atomic.Pointer[Tables]

// LookupTables returns the memoized kernel tables for coefficient c,
// building them on first use. The returned tables are shared and must not
// be modified.
func LookupTables(c uint16) *Tables {
	if t := tableCache[c].Load(); t != nil {
		return t
	}
	t := buildTables(c)
	tableCache[c].Store(t)
	return t
}

func buildTables(c uint16) *Tables {
	t := new(Tables)
	for j := 0; j < 4; j++ {
		for v := 0; v < 16; v++ {
			p := Mul(c, uint16(v)<<(4*j))
			t.lo[j][v] = byte(p)
			t.hi[j][v] = byte(p >> 8)
		}
	}
	for b := 0; b < 256; b++ {
		pl := uint32(Mul(c, uint16(b)))
		ph := uint32(Mul(c, uint16(b)<<8))
		t.w[0][0][b] = pl
		t.w[0][1][b] = ph
		t.w[1][0][b] = pl << 16
		t.w[1][1][b] = ph << 16
	}
	return t
}

// SIMDEnabled reports whether the public kernels route long slices to the
// vector (SIMD) implementation on this CPU; otherwise the portable
// word-parallel path is the fast path.
func SIMDEnabled() bool { return simdEnabled }

func checkPair(op string, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf16: %s length mismatch %d != %d", op, len(dst), len(src)))
	}
	if len(dst)%SymbolBytes != 0 {
		panic(fmt.Sprintf("gf16: %s length %d not a whole number of symbols", op, len(dst)))
	}
}

// AddSlice sets dst[i] ^= src[i]. Lengths must match and be even. XOR is
// position-wise in any characteristic-2 field, so the body is shared with
// gf8's word-parallel XOR discipline.
func AddSlice(dst, src []byte) {
	checkPair("AddSlice", dst, src)
	n := 0
	for ; n+8 <= len(dst); n += 8 {
		binary.LittleEndian.PutUint64(dst[n:], binary.LittleEndian.Uint64(dst[n:])^binary.LittleEndian.Uint64(src[n:]))
	}
	for ; n < len(dst); n++ {
		dst[n] ^= src[n]
	}
}

// AddSliceRef is the symbol-wise reference implementation of AddSlice.
func AddSliceRef(dst, src []byte) {
	checkPair("AddSlice", dst, src)
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// XorSlice sets dst[i] = a[i] ^ b[i]. All three slices must share one even
// length. dst may alias a or b.
func XorSlice(dst, a, b []byte) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic(fmt.Sprintf("gf16: XorSlice length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	if len(dst)%SymbolBytes != 0 {
		panic(fmt.Sprintf("gf16: XorSlice length %d not a whole number of symbols", len(dst)))
	}
	n := 0
	for ; n+8 <= len(dst); n += 8 {
		binary.LittleEndian.PutUint64(dst[n:], binary.LittleEndian.Uint64(a[n:])^binary.LittleEndian.Uint64(b[n:]))
	}
	for ; n < len(dst); n++ {
		dst[n] = a[n] ^ b[n]
	}
}

// MulSlice sets dst = c·src symbol-wise. Lengths must match and be even.
// c == 0 zeroes dst; c == 1 copies. dst may alias src.
func MulSlice(c uint16, dst, src []byte) {
	checkPair("MulSlice", dst, src)
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		if len(src) < wordMin {
			mulSliceRefBody(c, dst, src)
			return
		}
		t := LookupTables(c)
		if simdEnabled && len(src) >= simdMin {
			mulSliceSIMD(t, dst, src)
			return
		}
		mulSliceWord(t, dst, src)
	}
}

// MulSliceRef is the symbol-wise reference implementation of MulSlice,
// working straight off the log/exp tables.
func MulSliceRef(c uint16, dst, src []byte) {
	checkPair("MulSlice", dst, src)
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		mulSliceRefBody(c, dst, src)
	}
}

func mulSliceRefBody(c uint16, dst, src []byte) {
	lc := logTable[c]
	for i := 0; i+2 <= len(src); i += 2 {
		s := uint16(src[i]) | uint16(src[i+1])<<8
		var p uint16
		if s != 0 {
			p = expTable[lc+logTable[s]]
		}
		dst[i] = byte(p)
		dst[i+1] = byte(p >> 8)
	}
}

// mulSliceWord is the word-parallel multiply body: c must be ≥ 2 and
// len(dst) ≥ wordMin (callers dispatch).
func mulSliceWord(t *Tables, dst, src []byte) {
	n := len(src) &^ 15
	for i := 0; i+16 <= n; i += 16 {
		s := src[i : i+16 : i+16]
		lo1 := t.w[0][0][s[0]] ^ t.w[0][1][s[1]] ^ t.w[1][0][s[2]] ^ t.w[1][1][s[3]]
		hi1 := t.w[0][0][s[4]] ^ t.w[0][1][s[5]] ^ t.w[1][0][s[6]] ^ t.w[1][1][s[7]]
		lo2 := t.w[0][0][s[8]] ^ t.w[0][1][s[9]] ^ t.w[1][0][s[10]] ^ t.w[1][1][s[11]]
		hi2 := t.w[0][0][s[12]] ^ t.w[0][1][s[13]] ^ t.w[1][0][s[14]] ^ t.w[1][1][s[15]]
		binary.LittleEndian.PutUint64(dst[i:], uint64(lo1)|uint64(hi1)<<32)
		binary.LittleEndian.PutUint64(dst[i+8:], uint64(lo2)|uint64(hi2)<<32)
	}
	if n < len(dst) {
		wordTail(t, dst[n:], src[n:], true)
	}
}

// MulAddSlice sets dst ^= c·src symbol-wise. Lengths must match and be even.
// This is the inner kernel of wide-stripe matrix-vector encoding.
func MulAddSlice(c uint16, dst, src []byte) {
	checkPair("MulAddSlice", dst, src)
	switch c {
	case 0:
		// no-op
	case 1:
		AddSlice(dst, src)
	default:
		if len(src) < wordMin {
			mulAddSliceRefBody(c, dst, src)
			return
		}
		t := LookupTables(c)
		if simdEnabled && len(src) >= simdMin {
			mulAddSliceSIMD(t, dst, src)
			return
		}
		mulAddSliceWord(t, dst, src)
	}
}

// MulAddSliceRef is the symbol-wise reference implementation of MulAddSlice.
func MulAddSliceRef(c uint16, dst, src []byte) {
	checkPair("MulAddSlice", dst, src)
	switch c {
	case 0:
	case 1:
		for i := range dst {
			dst[i] ^= src[i]
		}
	default:
		mulAddSliceRefBody(c, dst, src)
	}
}

func mulAddSliceRefBody(c uint16, dst, src []byte) {
	lc := logTable[c]
	for i := 0; i+2 <= len(src); i += 2 {
		s := uint16(src[i]) | uint16(src[i+1])<<8
		if s != 0 {
			p := expTable[lc+logTable[s]]
			dst[i] ^= byte(p)
			dst[i+1] ^= byte(p >> 8)
		}
	}
}

// mulAddSliceWord is the word-parallel multiply-accumulate body: c must be
// ≥ 2 and len(dst) ≥ wordMin (callers dispatch).
func mulAddSliceWord(t *Tables, dst, src []byte) {
	n := len(src) &^ 15
	for i := 0; i+16 <= n; i += 16 {
		s := src[i : i+16 : i+16]
		lo1 := t.w[0][0][s[0]] ^ t.w[0][1][s[1]] ^ t.w[1][0][s[2]] ^ t.w[1][1][s[3]]
		hi1 := t.w[0][0][s[4]] ^ t.w[0][1][s[5]] ^ t.w[1][0][s[6]] ^ t.w[1][1][s[7]]
		lo2 := t.w[0][0][s[8]] ^ t.w[0][1][s[9]] ^ t.w[1][0][s[10]] ^ t.w[1][1][s[11]]
		hi2 := t.w[0][0][s[12]] ^ t.w[0][1][s[13]] ^ t.w[1][0][s[14]] ^ t.w[1][1][s[15]]
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^(uint64(lo1)|uint64(hi1)<<32))
		binary.LittleEndian.PutUint64(dst[i+8:], binary.LittleEndian.Uint64(dst[i+8:])^(uint64(lo2)|uint64(hi2)<<32))
	}
	if n < len(dst) {
		wordTail(t, dst[n:], src[n:], false)
	}
}

// wordTail finishes the sub-16-byte remainder of a word kernel using the
// already-fetched tables (one symbol at a time; at most 7 symbols).
func wordTail(t *Tables, dst, src []byte, overwrite bool) {
	for i := 0; i+2 <= len(src); i += 2 {
		p := t.w[0][0][src[i]] ^ t.w[0][1][src[i+1]]
		if overwrite {
			dst[i] = byte(p)
			dst[i+1] = byte(p >> 8)
		} else {
			dst[i] ^= byte(p)
			dst[i+1] ^= byte(p >> 8)
		}
	}
}

// mulAdd2 computes dst = c1·a ^ c2·b when overwrite is true, or
// dst ^= c1·a ^ c2·b otherwise, one pass over memory for both sources — the
// fused pair that keeps the portable dot product ahead of the reference by
// halving destination traffic. All slices share one length (callers
// validate); t1/t2 are the coefficients' tables.
func mulAdd2(t1, t2 *Tables, dst, a, b []byte, overwrite bool) {
	n := len(dst) &^ 7
	for i := 0; i+8 <= n; i += 8 {
		s1 := a[i : i+8 : i+8]
		s2 := b[i : i+8 : i+8]
		lo := t1.w[0][0][s1[0]] ^ t1.w[0][1][s1[1]] ^ t1.w[1][0][s1[2]] ^ t1.w[1][1][s1[3]] ^
			t2.w[0][0][s2[0]] ^ t2.w[0][1][s2[1]] ^ t2.w[1][0][s2[2]] ^ t2.w[1][1][s2[3]]
		hi := t1.w[0][0][s1[4]] ^ t1.w[0][1][s1[5]] ^ t1.w[1][0][s1[6]] ^ t1.w[1][1][s1[7]] ^
			t2.w[0][0][s2[4]] ^ t2.w[0][1][s2[5]] ^ t2.w[1][0][s2[6]] ^ t2.w[1][1][s2[7]]
		r := uint64(lo) | uint64(hi)<<32
		if overwrite {
			binary.LittleEndian.PutUint64(dst[i:], r)
		} else {
			binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^r)
		}
	}
	for i := n; i+2 <= len(dst); i += 2 {
		p := t1.w[0][0][a[i]] ^ t1.w[0][1][a[i+1]] ^ t2.w[0][0][b[i]] ^ t2.w[0][1][b[i+1]]
		if overwrite {
			dst[i] = byte(p)
			dst[i+1] = byte(p >> 8)
		} else {
			dst[i] ^= byte(p)
			dst[i+1] ^= byte(p >> 8)
		}
	}
}

// DotSlice computes the dot product sum_i coeffs[i]·vecs[i] into dst,
// overwriting dst. All vecs must share dst's (even) length; len(coeffs)
// must equal len(vecs). dst must not alias any vec except vecs[0]. This is
// the multiply-accumulate kernel behind wide-stripe matrix encoding and
// erasure decoding.
func DotSlice(dst []byte, coeffs []uint16, vecs [][]byte) {
	if len(coeffs) != len(vecs) {
		panic(fmt.Sprintf("gf16: DotSlice arity mismatch %d != %d", len(coeffs), len(vecs)))
	}
	for j, v := range vecs {
		if len(v) != len(dst) {
			panic(fmt.Sprintf("gf16: DotSlice vec %d has %d bytes, want %d", j, len(v), len(dst)))
		}
	}
	if len(dst)%SymbolBytes != 0 {
		panic(fmt.Sprintf("gf16: DotSlice length %d not a whole number of symbols", len(dst)))
	}
	if len(coeffs) == 0 {
		clear(dst)
		return
	}
	if len(dst) < wordMin {
		DotSliceRef(dst, coeffs, vecs)
		return
	}
	if simdEnabled && len(dst) >= simdMin {
		// One vector multiply pass per source: at SIMD speeds the extra
		// destination traffic of unfused passes is cheaper than falling back
		// to the scalar pairwise kernel.
		MulSlice(coeffs[0], dst, vecs[0])
		for j := 1; j < len(coeffs); j++ {
			MulAddSlice(coeffs[j], dst, vecs[j])
		}
		return
	}
	dotSliceWord(dst, coeffs, vecs)
}

// dotSliceWord is the portable dot-product body: sources are consumed in
// fused pairs (see mulAdd2), the first pass overwriting dst. len(coeffs)
// must be ≥ 1 and len(dst) ≥ wordMin (callers dispatch).
func dotSliceWord(dst []byte, coeffs []uint16, vecs [][]byte) {
	j := 0
	overwrite := true
	for ; j+2 <= len(coeffs); j += 2 {
		c1, c2 := coeffs[j], coeffs[j+1]
		// The 0/1 coefficients have no gain from fusing; let the dispatching
		// kernels take their fast paths instead.
		if c1 < 2 || c2 < 2 {
			break
		}
		mulAdd2(LookupTables(c1), LookupTables(c2), dst, vecs[j], vecs[j+1], overwrite)
		overwrite = false
	}
	for ; j < len(coeffs); j++ {
		if overwrite {
			mulSliceDispatchWord(coeffs[j], dst, vecs[j])
			overwrite = false
		} else {
			mulAddSliceDispatchWord(coeffs[j], dst, vecs[j])
		}
	}
}

// mulSliceDispatchWord handles the 0/1 fast paths then the word body —
// MulSlice without the SIMD branch, so dotSliceWord stays a pure word-path
// kernel for tests and non-SIMD builds.
func mulSliceDispatchWord(c uint16, dst, src []byte) {
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		mulSliceWord(LookupTables(c), dst, src)
	}
}

func mulAddSliceDispatchWord(c uint16, dst, src []byte) {
	switch c {
	case 0:
	case 1:
		AddSlice(dst, src)
	default:
		mulAddSliceWord(LookupTables(c), dst, src)
	}
}

// DotSliceRef is the symbol-wise reference implementation of DotSlice: zero
// the destination, then one reference multiply-accumulate pass per source.
func DotSliceRef(dst []byte, coeffs []uint16, vecs [][]byte) {
	if len(coeffs) != len(vecs) {
		panic(fmt.Sprintf("gf16: DotSlice arity mismatch %d != %d", len(coeffs), len(vecs)))
	}
	clear(dst)
	for j, c := range coeffs {
		MulAddSliceRef(c, dst, vecs[j])
	}
}

// PackSymbols packs uint16 symbols little-endian into a fresh byte slice —
// the bridge between symbol-level tests/tools and the packed kernels.
func PackSymbols(sym []uint16) []byte {
	out := make([]byte, len(sym)*SymbolBytes)
	for i, s := range sym {
		binary.LittleEndian.PutUint16(out[i*SymbolBytes:], s)
	}
	return out
}

// UnpackSymbols is the inverse of PackSymbols. The byte length must be even.
func UnpackSymbols(b []byte) []uint16 {
	if len(b)%SymbolBytes != 0 {
		panic(fmt.Sprintf("gf16: UnpackSymbols length %d not a whole number of symbols", len(b)))
	}
	out := make([]uint16, len(b)/SymbolBytes)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[i*SymbolBytes:])
	}
	return out
}
