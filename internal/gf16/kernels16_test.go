package gf16

import (
	"bytes"
	"math/rand"
	"testing"
)

// testLengths exercises the empty case, sub-word slices, exact word/stride
// multiples, and odd tails around every unroll boundary in the kernels —
// all even, since slices hold whole 2-byte symbols.
var testLengths = []int{0, 2, 4, 6, 8, 14, 16, 18, 24, 30, 32, 34, 62, 64, 66, 100, 126, 128, 130, 254, 256, 258, 1000}

// unaligned returns an even-length slice of n random bytes whose backing
// data starts at the given byte offset from an allocation boundary, so
// kernels are exercised on pointers with every alignment mod 8.
func unaligned(rng *rand.Rand, n, off int) []byte {
	b := make([]byte, n+off)
	rng.Read(b)
	return b[off : off+n]
}

// testCoeffs is the coefficient sample the kernel tests sweep: GF(2^16) is
// too large to sweep exhaustively the way the gf8 suite does, so cover the
// special cases (0, 1), boundary patterns, early generator powers, and a
// seeded random spread across the field.
func testCoeffs(rng *rand.Rand, extra int) []uint16 {
	cs := []uint16{0, 1, 2, 3, 0x00ff, 0x0100, 0x0101, 0x1001, 0x8000, 0xfffe, 0xffff}
	for i := 1; i < 32; i++ {
		cs = append(cs, Generator(i*7))
	}
	for i := 0; i < extra; i++ {
		cs = append(cs, uint16(1+rng.Intn(Order-1)))
	}
	return cs
}

func TestAddSliceMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testLengths {
		for off := 0; off < 8; off++ {
			src := unaligned(rng, n, off)
			dst := unaligned(rng, n, (off+3)%8)
			want := append([]byte(nil), dst...)
			AddSliceRef(want, src)
			AddSlice(dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("AddSlice n=%d off=%d: mismatch", n, off)
			}
		}
	}
}

func TestXorSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range testLengths {
		for off := 0; off < 8; off++ {
			a := unaligned(rng, n, off)
			b := unaligned(rng, n, (off+5)%8)
			dst := make([]byte, n)
			XorSlice(dst, a, b)
			for i := range dst {
				if dst[i] != a[i]^b[i] {
					t.Fatalf("XorSlice n=%d off=%d i=%d: %#x != %#x", n, off, i, dst[i], a[i]^b[i])
				}
			}
			// Aliased destination.
			want := append([]byte(nil), dst...)
			XorSlice(a, a, b)
			if !bytes.Equal(a, want) {
				t.Fatalf("XorSlice aliased n=%d off=%d: mismatch", n, off)
			}
		}
	}
}

// TestRefKernelsMatchScalarMul pins the reference kernels themselves to the
// scalar field: everything else in the package is verified against the
// references, so they must be verified against Mul.
func TestRefKernelsMatchScalarMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range testCoeffs(rng, 100) {
		sym := make([]uint16, 41)
		for i := range sym {
			sym[i] = uint16(rng.Intn(Order))
		}
		sym[0] = 0
		src := PackSymbols(sym)
		dst := make([]byte, len(src))
		MulSliceRef(c, dst, src)
		got := UnpackSymbols(dst)
		for i := range sym {
			if got[i] != Mul(c, sym[i]) {
				t.Fatalf("MulSliceRef c=%#x sym=%d: %#x != %#x", c, i, got[i], Mul(c, sym[i]))
			}
		}
		prev := UnpackSymbols(dst)
		MulAddSliceRef(c, dst, src)
		got = UnpackSymbols(dst)
		for i := range sym {
			if got[i] != prev[i]^Mul(c, sym[i]) {
				t.Fatalf("MulAddSliceRef c=%#x sym=%d mismatch", c, i)
			}
		}
	}
}

// TestMulKernelsMatchRef sweeps the public dispatchers (whichever path they
// pick — SIMD on capable hosts, word-parallel otherwise) against the
// symbol-wise reference over the coefficient sample, odd-tail lengths, and
// unaligned offsets.
func TestMulKernelsMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, c := range testCoeffs(rng, 200) {
		for _, n := range testLengths {
			off := (int(c) + n) % 8
			src := unaligned(rng, n, off)

			dst := unaligned(rng, n, (off+1)%8)
			want := append([]byte(nil), dst...)
			MulSliceRef(c, want, src)
			MulSlice(c, dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulSlice c=%#x n=%d: mismatch", c, n)
			}

			dst = unaligned(rng, n, (off+2)%8)
			want = append([]byte(nil), dst...)
			MulAddSliceRef(c, want, src)
			MulAddSlice(c, dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddSlice c=%#x n=%d: mismatch", c, n)
			}
		}
	}
}

// TestWordKernelsMatchRef pins the portable word-parallel bodies directly:
// on SIMD-capable hosts the public kernels route long slices to the vector
// path, so without this the word loops would only ever see short inputs.
func TestWordKernelsMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lengths := []int{16, 18, 30, 32, 34, 64, 100, 258, 1000}
	for _, c := range testCoeffs(rng, 200) {
		if c < 2 {
			continue
		}
		t16 := LookupTables(c)
		for _, n := range lengths {
			off := (int(c) + n) % 8
			src := unaligned(rng, n, off)

			dst := unaligned(rng, n, (off+1)%8)
			want := append([]byte(nil), dst...)
			MulSliceRef(c, want, src)
			mulSliceWord(t16, dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("mulSliceWord c=%#x n=%d: mismatch", c, n)
			}

			dst = unaligned(rng, n, (off+2)%8)
			want = append([]byte(nil), dst...)
			MulAddSliceRef(c, want, src)
			mulAddSliceWord(t16, dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("mulAddSliceWord c=%#x n=%d: mismatch", c, n)
			}
		}
	}
}

func TestMulSliceInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, c := range testCoeffs(rng, 50) {
		s := unaligned(rng, 258, int(c)%8)
		want := make([]byte, len(s))
		MulSliceRef(c, want, s)
		MulSlice(c, s, s)
		if !bytes.Equal(s, want) {
			t.Fatalf("in-place MulSlice c=%#x: mismatch", c)
		}
	}
}

// TestDotSliceMatchesRef covers every arity the pairwise-fused kernel
// branches on: 0 sources, odd/even counts (lone trailing source with and
// without a preceding fused pair), across odd-tail lengths and offsets —
// through the public dispatcher and the word body directly.
func TestDotSliceMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{0, 1, 2, 3, 4, 5, 6, 7, 12} {
		for _, n := range []int{0, 2, 8, 14, 16, 18, 100, 1000} {
			coeffs := make([]uint16, k)
			vecs := make([][]byte, k)
			for j := 0; j < k; j++ {
				coeffs[j] = uint16(rng.Intn(Order))
				vecs[j] = unaligned(rng, n, (j+n)%8)
			}
			// Include zero and one coefficients, which take special paths.
			if k > 1 {
				coeffs[0] = 0
			}
			if k > 2 {
				coeffs[1] = 1
			}
			dst := unaligned(rng, n, 3)
			want := make([]byte, n)
			DotSliceRef(want, coeffs, vecs)
			DotSlice(dst, coeffs, vecs)
			if !bytes.Equal(dst, want) {
				t.Fatalf("DotSlice k=%d n=%d: mismatch", k, n)
			}

			if k > 0 && n >= wordMin {
				dst = unaligned(rng, n, 5)
				dotSliceWord(dst, coeffs, vecs)
				if !bytes.Equal(dst, want) {
					t.Fatalf("dotSliceWord k=%d n=%d: mismatch", k, n)
				}
			}
		}
	}
}

func TestKernelLengthPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	a, b := make([]byte, 4), make([]byte, 6)
	odd := make([]byte, 5)
	expectPanic("AddSlice mismatch", func() { AddSlice(a, b) })
	expectPanic("AddSlice odd", func() { AddSlice(odd, odd) })
	expectPanic("XorSlice mismatch", func() { XorSlice(a, a, b) })
	expectPanic("XorSlice odd", func() { XorSlice(odd, odd, odd) })
	expectPanic("MulSlice mismatch", func() { MulSlice(3, a, b) })
	expectPanic("MulSlice odd", func() { MulSlice(3, odd, odd) })
	expectPanic("MulAddSlice mismatch", func() { MulAddSlice(3, a, b) })
	expectPanic("MulAddSlice odd", func() { MulAddSlice(3, odd, odd) })
	expectPanic("DotSlice arity", func() { DotSlice(a, []uint16{1, 2}, [][]byte{a}) })
	expectPanic("DotSlice vec len", func() { DotSlice(a, []uint16{1}, [][]byte{b}) })
	expectPanic("DotSlice odd", func() { DotSlice(odd, []uint16{1}, [][]byte{odd}) })
	expectPanic("UnpackSymbols odd", func() { UnpackSymbols(odd) })
}

// TestLookupTablesAllCoefficients builds the kernel tables for every field
// element once and spot-checks each against the scalar multiply — the
// all-coefficients sweep the per-length tests can't afford.
func TestLookupTablesAllCoefficients(t *testing.T) {
	if testing.Short() {
		t.Skip("all-coefficient table sweep is slow")
	}
	for c := 0; c < Order; c++ {
		tab := LookupTables(uint16(c))
		if tab != LookupTables(uint16(c)) {
			t.Fatalf("c=%#x: tables not memoized", c)
		}
		// One probe per table suffices: buildTables derives every entry the
		// same way, so a wrong table is wrong almost everywhere.
		v := c & 0x0f
		p := Mul(uint16(c), uint16(v)<<4)
		if tab.lo[1][v] != byte(p) || tab.hi[1][v] != byte(p>>8) {
			t.Fatalf("c=%#x: nibble table wrong", c)
		}
		b := (c >> 3) & 0xff
		if tab.w[1][1][b] != uint32(Mul(uint16(c), uint16(b)<<8))<<16 {
			t.Fatalf("c=%#x: word table wrong", c)
		}
	}
}

// FuzzGF16Tables checks table generation round-trips: for a fuzzer-chosen
// coefficient, the nibble tables must recombine to the scalar product of
// any symbol, the word tables must agree with the nibble tables, and the
// kernels driven by those tables must match the reference on the fuzzed
// payload.
func FuzzGF16Tables(f *testing.F) {
	f.Add(uint16(2), uint16(0xabcd), []byte("wide stripes need wide symbols.."))
	f.Add(uint16(0xffff), uint16(1), []byte{})
	f.Add(uint16(0x1001), uint16(0x8000), bytes.Repeat([]byte{0x5a}, 130))
	f.Fuzz(func(t *testing.T, c, s uint16, data []byte) {
		if c < 2 {
			c += 2 // 0/1 never reach the table paths
		}
		tab := LookupTables(c)

		// Nibble-table round-trip: the four nibble products of s must XOR
		// back to c·s, low and high bytes separately.
		var lo, hi byte
		for j := 0; j < 4; j++ {
			v := (s >> (4 * j)) & 0x0f
			lo ^= tab.lo[j][v]
			hi ^= tab.hi[j][v]
		}
		if p := Mul(c, s); lo != byte(p) || hi != byte(p>>8) {
			t.Fatalf("nibble tables for c=%#x do not recombine at s=%#x", c, s)
		}

		// Word-table round-trip: the two byte products must XOR back to c·s
		// at both symbol positions of the uint32 pair.
		w0 := tab.w[0][0][byte(s)] ^ tab.w[0][1][byte(s>>8)]
		w1 := tab.w[1][0][byte(s)] ^ tab.w[1][1][byte(s>>8)]
		if p := uint32(Mul(c, s)); w0 != p || w1 != p<<16 {
			t.Fatalf("word tables for c=%#x do not recombine at s=%#x", c, s)
		}

		// Kernel equivalence on the fuzzed payload (trimmed to whole
		// symbols): public dispatch and word body vs reference.
		n := len(data) &^ 1
		src := data[:n]
		dst := make([]byte, n)
		want := make([]byte, n)
		MulSlice(c, dst, src)
		MulSliceRef(c, want, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulSlice c=%#x n=%d: %x != %x", c, n, dst, want)
		}
		MulAddSlice(c, dst, src)
		MulAddSliceRef(c, want, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAddSlice c=%#x n=%d: %x != %x", c, n, dst, want)
		}
		if n >= wordMin {
			mulSliceWord(tab, dst, src)
			MulSliceRef(c, want, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("mulSliceWord c=%#x n=%d: %x != %x", c, n, dst, want)
			}
			mulAddSliceWord(tab, dst, src)
			MulAddSliceRef(c, want, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("mulAddSliceWord c=%#x n=%d: %x != %x", c, n, dst, want)
			}
		}
	})
}

func BenchmarkMulAddSlice16(b *testing.B) {
	variants := []struct {
		name string
		fn   func(c uint16, dst, src []byte)
	}{
		{"dispatch", MulAddSlice},
		{"word", func(c uint16, dst, src []byte) { mulAddSliceWord(LookupTables(c), dst, src) }},
		{"ref", MulAddSliceRef},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			src := make([]byte, 1<<20)
			dst := make([]byte, 1<<20)
			rng := rand.New(rand.NewSource(5))
			rng.Read(src)
			b.SetBytes(1 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.fn(0x1234, dst, src)
			}
		})
	}
}

func BenchmarkDotSlice16(b *testing.B) {
	const k = 8
	coeffs := make([]uint16, k)
	vecs := make([][]byte, k)
	rng := rand.New(rand.NewSource(6))
	for j := range vecs {
		coeffs[j] = uint16(2 + rng.Intn(Order-2))
		vecs[j] = make([]byte, 1<<18)
		rng.Read(vecs[j])
	}
	dst := make([]byte, 1<<18)
	b.SetBytes(k << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotSlice(dst, coeffs, vecs)
	}
}
