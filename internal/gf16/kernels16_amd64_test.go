//go:build amd64

package gf16

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAsmKernelsMatchRef drives the SSSE3 and AVX2 assembly bodies directly
// (bypassing dispatch) so both ISA variants stay verified on machines where
// the faster one would otherwise shadow the other. Block-aligned lengths
// only, per the asm contract; a sampled coefficient sweep since GF(2^16) is
// too large for the exhaustive one the gf8 suite runs.
func TestAsmKernelsMatchRef(t *testing.T) {
	if !simdEnabled {
		t.Skip("no SIMD support on this CPU")
	}
	rng := rand.New(rand.NewSource(8))
	type variant struct {
		name   string
		ok     bool
		block  int
		mul    func(lo, hi *[4][16]byte, dst, src *byte, n int)
		mulAdd func(lo, hi *[4][16]byte, dst, src *byte, n int)
	}
	variants := []variant{
		{"ssse3", hasSSSE3, 32, gf16MulSSSE3, gf16MulAddSSSE3},
		{"avx2", hasAVX2, 64, gf16MulAVX2, gf16MulAddAVX2},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			if !v.ok {
				t.Skipf("%s not supported on this CPU", v.name)
			}
			for _, blocks := range []int{1, 2, 3, 8} {
				n := blocks * v.block
				src := make([]byte, n)
				rng.Read(src)
				for _, c := range testCoeffs(rng, 500) {
					if c < 2 {
						continue
					}
					tab := LookupTables(c)
					dst := make([]byte, n)
					rng.Read(dst)
					want := append([]byte(nil), dst...)

					v.mul(&tab.lo, &tab.hi, &dst[0], &src[0], n)
					MulSliceRef(c, want, src)
					if !bytes.Equal(dst, want) {
						t.Fatalf("mul c=%#x n=%d: mismatch", c, n)
					}

					v.mulAdd(&tab.lo, &tab.hi, &dst[0], &src[0], n)
					MulAddSliceRef(c, want, src)
					if !bytes.Equal(dst, want) {
						t.Fatalf("mulAdd c=%#x n=%d: mismatch", c, n)
					}
				}
			}
		})
	}
}
