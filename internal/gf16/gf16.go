// Package gf16 implements arithmetic over GF(2^16) — the wide-symbol field
// GF-Complete provides alongside w=8. GF(2^8) caps a code at 256 elements
// per row; cloud-scale deployments with very wide stripes (k in the tens to
// hundreds) need w=16. The primitive polynomial is x^16+x^12+x^3+x+1
// (0x1100b), the same default as GF-Complete.
//
// Like internal/gf, the package has two faces: scalar field arithmetic on
// uint16 symbols (this file), and bulk slice kernels over byte slices that
// pack symbols little-endian, two bytes each (kernels.go) — so GF(2^16)
// codes speak the same [][]byte shard currency as the rest of the system
// and flow through the stores, the streaming pipeline, and the fan-out
// executor unchanged.
//
// All operations are allocation-free and safe for concurrent use: the
// log/exp tables are computed once at package init, and the per-coefficient
// multiplication tables the kernels use are built on first use and memoized
// forever (see kernels.go).
package gf16

// Poly is the primitive polynomial generating the field.
const Poly = 0x1100b

// Order is the field size.
const Order = 1 << 16

// SymbolBytes is the byte width of one packed symbol in the slice kernels.
const SymbolBytes = 2

// generator of the multiplicative group. 2 is primitive for 0x1100b.
const generator = 2

var (
	// expTable[i] = generator^i for i in [0, 2·(Order-1)). Doubled so Mul
	// can index exp[log(a)+log(b)] without a modulo reduction.
	expTable [2 * (Order - 1)]uint16
	// logTable[a] = discrete log of a (log of 0 is unused and set to 0).
	logTable [Order]uint32
)

func init() {
	x := 1
	for i := 0; i < Order-1; i++ {
		expTable[i] = uint16(x)
		expTable[i+Order-1] = uint16(x)
		logTable[x] = uint32(i)
		x <<= 1
		if x >= Order {
			x ^= Poly
		}
	}
}

// Add returns a+b in GF(2^16). Addition and subtraction coincide (XOR).
func Add(a, b uint16) uint16 { return a ^ b }

// Sub returns a-b in GF(2^16); identical to Add.
func Sub(a, b uint16) uint16 { return a ^ b }

// Mul returns a·b in GF(2^16).
func Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[logTable[a]+logTable[b]]
}

// Inv returns a's multiplicative inverse; it panics on zero.
func Inv(a uint16) uint16 {
	if a == 0 {
		panic("gf16: inverse of zero")
	}
	return expTable[(Order-1)-logTable[a]]
}

// Div returns a/b; it panics if b is zero.
func Div(a, b uint16) uint16 {
	if b == 0 {
		panic("gf16: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += Order - 1
	}
	return expTable[d]
}

// Exp returns base^e, with Exp(0,0) = 1 by convention.
func Exp(base uint16, e int) uint16 {
	if e == 0 {
		return 1
	}
	if base == 0 {
		return 0
	}
	if e < 0 {
		base = Inv(base)
		e = -e
	}
	lg := (int(logTable[base]) * e) % (Order - 1)
	return expTable[lg]
}

// Generator returns g^i where g is the field's primitive element (2).
// Generator(0) == 1 and the sequence has period 65535.
func Generator(i int) uint16 {
	i %= Order - 1
	if i < 0 {
		i += Order - 1
	}
	return expTable[i]
}

// Log returns the discrete logarithm of a base the primitive element.
// It panics if a is zero, which has no logarithm.
func Log(a uint16) int {
	if a == 0 {
		panic("gf16: log of zero")
	}
	return int(logTable[a])
}

// MulRow sets dst[i] = c·src[i] over uint16 symbol rows — the scalar row
// kernel matrix row-reduction uses (the bulk data path goes through the
// packed byte kernels in kernels.go instead).
func MulRow(c uint16, dst, src []uint16) {
	if len(dst) != len(src) {
		panic("gf16: MulRow length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		lc := logTable[c]
		for i, s := range src {
			if s != 0 {
				dst[i] = expTable[lc+logTable[s]]
			} else {
				dst[i] = 0
			}
		}
	}
}

// MulAddRow sets dst[i] ^= c·src[i] over uint16 symbol rows.
func MulAddRow(c uint16, dst, src []uint16) {
	if len(dst) != len(src) {
		panic("gf16: MulAddRow length mismatch")
	}
	switch c {
	case 0:
	case 1:
		for i := range dst {
			dst[i] ^= src[i]
		}
	default:
		lc := logTable[c]
		for i, s := range src {
			if s != 0 {
				dst[i] ^= expTable[lc+logTable[s]]
			}
		}
	}
}
