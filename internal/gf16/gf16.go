// Package gf16 implements arithmetic over GF(2^16) — the wide-symbol field
// GF-Complete provides alongside w=8 — plus a self-contained wide
// Reed-Solomon codec built on it. GF(2^8) caps a code at 256 elements per
// row; cloud-scale deployments with very wide stripes (hundreds of disks)
// need w=16. The primitive polynomial is x^16+x^12+x^3+x+1 (0x1100b), the
// same default as GF-Complete.
package gf16

import (
	"errors"
	"fmt"
)

// Poly is the primitive polynomial generating the field.
const Poly = 0x1100b

// Order is the field size.
const Order = 1 << 16

var (
	expTable [2 * (Order - 1)]uint16
	logTable [Order]uint32
)

func init() {
	x := 1
	for i := 0; i < Order-1; i++ {
		expTable[i] = uint16(x)
		expTable[i+Order-1] = uint16(x)
		logTable[x] = uint32(i)
		x <<= 1
		if x >= Order {
			x ^= Poly
		}
	}
}

// Add returns a+b (XOR).
func Add(a, b uint16) uint16 { return a ^ b }

// Mul returns a·b.
func Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[logTable[a]+logTable[b]]
}

// Inv returns a's multiplicative inverse; it panics on zero.
func Inv(a uint16) uint16 {
	if a == 0 {
		panic("gf16: inverse of zero")
	}
	return expTable[(Order-1)-logTable[a]]
}

// Div returns a/b; it panics if b is zero.
func Div(a, b uint16) uint16 {
	if b == 0 {
		panic("gf16: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += Order - 1
	}
	return expTable[d]
}

// Exp returns base^e, with Exp(0,0) = 1.
func Exp(base uint16, e int) uint16 {
	if e == 0 {
		return 1
	}
	if base == 0 {
		return 0
	}
	if e < 0 {
		base = Inv(base)
		e = -e
	}
	lg := (int(logTable[base]) * e) % (Order - 1)
	return expTable[lg]
}

// MulAddSlice computes dst[i] ^= c·src[i] over uint16 symbols.
func MulAddSlice(c uint16, dst, src []uint16) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf16: length mismatch %d != %d", len(dst), len(src)))
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range dst {
			dst[i] ^= src[i]
		}
		return
	}
	lc := logTable[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+logTable[s]]
		}
	}
}

// ErrUnrecoverable is returned when an erasure pattern cannot be decoded.
var ErrUnrecoverable = errors.New("gf16: unrecoverable erasure pattern")

// ErrShard flags missing or ragged shards.
var ErrShard = errors.New("gf16: invalid shards")

// RS is a wide systematic Reed-Solomon code over GF(2^16): k data and m
// parity shards of uint16 symbols, MDS for k+m ≤ 65536.
type RS struct {
	k, m int
	// parityRows[r][j] is the coefficient of data shard j in parity r:
	// a Cauchy block, so every square submatrix is invertible.
	parityRows [][]uint16
}

// NewRS constructs a wide RS code.
func NewRS(k, m int) (*RS, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("gf16: invalid parameters k=%d m=%d", k, m)
	}
	if k+m > Order {
		return nil, fmt.Errorf("gf16: k+m = %d exceeds field size", k+m)
	}
	rows := make([][]uint16, m)
	for r := range rows {
		rows[r] = make([]uint16, k)
		for j := 0; j < k; j++ {
			rows[r][j] = Inv(uint16(r+k) ^ uint16(j))
		}
	}
	return &RS{k: k, m: m, parityRows: rows}, nil
}

// K returns the data shard count.
func (c *RS) K() int { return c.k }

// M returns the parity shard count.
func (c *RS) M() int { return c.m }

// Encode computes parity shards (uint16 symbol slices, equal lengths).
func (c *RS) Encode(data [][]uint16) ([][]uint16, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("%w: got %d data shards, want %d", ErrShard, len(data), c.k)
	}
	size := -1
	for i, d := range data {
		if d == nil {
			return nil, fmt.Errorf("%w: shard %d nil", ErrShard, i)
		}
		if size == -1 {
			size = len(d)
		}
		if len(d) != size {
			return nil, fmt.Errorf("%w: shard %d length %d, want %d", ErrShard, i, len(d), size)
		}
	}
	parity := make([][]uint16, c.m)
	for r := range parity {
		parity[r] = make([]uint16, size)
		for j, coeff := range c.parityRows[r] {
			MulAddSlice(coeff, parity[r], data[j])
		}
	}
	return parity, nil
}

// Reconstruct rebuilds nil shards in the length-(k+m) slice in place.
func (c *RS) Reconstruct(shards [][]uint16) error {
	n := c.k + c.m
	if len(shards) != n {
		return fmt.Errorf("%w: got %d shards, want %d", ErrShard, len(shards), n)
	}
	var avail, erased []int
	size := -1
	for i, s := range shards {
		if s == nil {
			erased = append(erased, i)
			continue
		}
		if size == -1 {
			size = len(s)
		}
		if len(s) != size {
			return fmt.Errorf("%w: shard %d length %d, want %d", ErrShard, i, len(s), size)
		}
		avail = append(avail, i)
	}
	if len(erased) == 0 {
		return nil
	}
	if len(avail) < c.k {
		return fmt.Errorf("%w: %d survivors for k=%d", ErrUnrecoverable, len(avail), c.k)
	}
	// Solve for the data from the first k survivors, then re-encode.
	use := avail[:c.k]
	mat := make([][]uint16, c.k)
	rhs := make([][]uint16, c.k)
	for i, e := range use {
		row := make([]uint16, c.k)
		if e < c.k {
			row[e] = 1
		} else {
			copy(row, c.parityRows[e-c.k])
		}
		mat[i] = row
		rhs[i] = append([]uint16(nil), shards[e]...)
	}
	// Gaussian elimination over GF(2^16), applying ops to rhs vectors.
	for col := 0; col < c.k; col++ {
		pivot := -1
		for r := col; r < c.k; r++ {
			if mat[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return fmt.Errorf("%w: singular survivor matrix", ErrUnrecoverable)
		}
		mat[col], mat[pivot] = mat[pivot], mat[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := Inv(mat[col][col])
		for j := col; j < c.k; j++ {
			mat[col][j] = Mul(mat[col][j], inv)
		}
		for i := range rhs[col] {
			rhs[col][i] = Mul(rhs[col][i], inv)
		}
		for r := 0; r < c.k; r++ {
			if r == col || mat[r][col] == 0 {
				continue
			}
			f := mat[r][col]
			for j := col; j < c.k; j++ {
				mat[r][j] ^= Mul(f, mat[col][j])
			}
			MulAddSlice(f, rhs[r], rhs[col])
		}
	}
	// rhs now holds the data shards.
	for _, e := range erased {
		if e < c.k {
			shards[e] = rhs[e]
		}
	}
	// Recompute erased parity from (possibly just recovered) data.
	data := make([][]uint16, c.k)
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			data[j] = shards[j]
		} else {
			data[j] = rhs[j]
		}
	}
	for _, e := range erased {
		if e >= c.k {
			out := make([]uint16, size)
			for j, coeff := range c.parityRows[e-c.k] {
				MulAddSlice(coeff, out, data[j])
			}
			shards[e] = out
		}
	}
	return nil
}
