// GF(2^16) bulk multiply kernels for amd64: 4×4-bit split product tables
// applied with the vector byte shuffle. Symbols are little-endian 16-bit
// words; a block of them is first split into a vector L of low symbol bytes
// and a vector H of high symbol bytes (word shifts + saturating pack), then
// each of the four nibbles n0..n3 of every symbol selects from two 16-entry
// tables — lo[j][n] and hi[j][n], the low and high bytes of c·(n << 4j) —
// so eight PSHUFBs and six XORs produce the low and high product bytes of
// every lane at once. Byte unpacks re-interleave the two halves into
// little-endian order on the way out. The per-128-bit-lane behaviour of
// AVX2 pack/unpack cancels: lanes come back out in the order they went in.
//
// Callers guarantee n > 0 and n a multiple of the block size (32 bytes for
// SSSE3, 64 for AVX2).

#include "textflag.h"

DATA nib16<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nib16<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nib16<>(SB), RODATA|NOPTR, $16

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// Operand loads shared by all four bodies (vet's asmdecl check cannot see
// FP references through macros, so each TEXT carries these five lines
// inline). LOAD_TABLES_SSE then parks the eight 16-entry nibble tables in
// X8..X15 for the whole loop (lo[0..3] then hi[0..3]).
#define LOAD_TABLES_SSE \
	MOVOU (AX), X8    \
	MOVOU 16(AX), X9  \
	MOVOU 32(AX), X10 \
	MOVOU 48(AX), X11 \
	MOVOU (BX), X12   \
	MOVOU 16(BX), X13 \
	MOVOU 32(BX), X14 \
	MOVOU 48(BX), X15

// One 32-byte (16-symbol) SSSE3 product block: consumes X0/X1 = the two
// input vectors, leaves the re-interleaved products in X0 (bytes 0..15)
// and X5 (bytes 16..31). Clobbers X0..X7.
#define PRODUCT_BLOCK_SSE \
	MOVOU  X0, X2            \ // L = low symbol bytes of both vectors
	PSLLW  $8, X2            \
	PSRLW  $8, X2            \
	MOVOU  X1, X3            \
	PSLLW  $8, X3            \
	PSRLW  $8, X3            \
	PACKUSWB X3, X2          \
	MOVOU  X0, X3            \ // H = high symbol bytes of both vectors
	PSRLW  $8, X3            \
	PSRLW  $8, X1            \
	PACKUSWB X1, X3          \
	MOVOU  X2, X4            \ // n0 = L & 0x0f
	PAND   nib16<>(SB), X4   \
	MOVOU  X8, X5            \
	PSHUFB X4, X5            \ // rlo  = lo[0][n0]
	MOVOU  X12, X6           \
	PSHUFB X4, X6            \ // rhi  = hi[0][n0]
	PSRLW  $4, X2            \ // n1 = (L >> 4) & 0x0f
	PAND   nib16<>(SB), X2   \
	MOVOU  X9, X7            \
	PSHUFB X2, X7            \
	PXOR   X7, X5            \ // rlo ^= lo[1][n1]
	MOVOU  X13, X7           \
	PSHUFB X2, X7            \
	PXOR   X7, X6            \ // rhi ^= hi[1][n1]
	MOVOU  X3, X4            \ // n2 = H & 0x0f
	PAND   nib16<>(SB), X4   \
	MOVOU  X10, X7           \
	PSHUFB X4, X7            \
	PXOR   X7, X5            \ // rlo ^= lo[2][n2]
	MOVOU  X14, X7           \
	PSHUFB X4, X7            \
	PXOR   X7, X6            \ // rhi ^= hi[2][n2]
	PSRLW  $4, X3            \ // n3 = (H >> 4) & 0x0f
	PAND   nib16<>(SB), X3   \
	MOVOU  X11, X7           \
	PSHUFB X3, X7            \
	PXOR   X7, X5            \ // rlo ^= lo[3][n3]
	MOVOU  X15, X7           \
	PSHUFB X3, X7            \
	PXOR   X7, X6            \ // rhi ^= hi[3][n3]
	MOVOU  X5, X0            \ // re-interleave lo/hi product bytes
	PUNPCKLBW X6, X0         \ // symbols 0..7
	PUNPCKHBW X6, X5         \ // symbols 8..15

// func gf16MulSSSE3(lo, hi *[4][16]byte, dst, src *byte, n int)
// dst = products of src; n % 32 == 0, n > 0.
TEXT ·gf16MulSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	LOAD_TABLES_SSE

mulLoop:
	MOVOU (SI), X0
	MOVOU 16(SI), X1
	PRODUCT_BLOCK_SSE
	MOVOU X0, (DI)
	MOVOU X5, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	JNE   mulLoop
	RET

// func gf16MulAddSSSE3(lo, hi *[4][16]byte, dst, src *byte, n int)
// dst ^= products of src; n % 32 == 0, n > 0.
TEXT ·gf16MulAddSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	LOAD_TABLES_SSE

mulAddLoop:
	MOVOU (SI), X0
	MOVOU 16(SI), X1
	PRODUCT_BLOCK_SSE
	MOVOU (DI), X7
	PXOR  X7, X0
	MOVOU 16(DI), X7
	PXOR  X7, X5
	MOVOU X0, (DI)
	MOVOU X5, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	JNE   mulAddLoop
	RET

// Table preamble shared by the AVX2 bodies: each 16-entry table is
// broadcast to both 128-bit lanes of Y8..Y15; the nibble mask lives in Y7.
#define LOAD_TABLES_AVX2 \
	VBROADCASTI128 (AX), Y8        \
	VBROADCASTI128 16(AX), Y9      \
	VBROADCASTI128 32(AX), Y10     \
	VBROADCASTI128 48(AX), Y11     \
	VBROADCASTI128 (BX), Y12       \
	VBROADCASTI128 16(BX), Y13     \
	VBROADCASTI128 32(BX), Y14     \
	VBROADCASTI128 48(BX), Y15     \
	VBROADCASTI128 nib16<>(SB), Y7

// One 64-byte (32-symbol) AVX2 product block: consumes Y0/Y1 = the two
// input vectors, leaves the re-interleaved products in Y0 (bytes 0..31)
// and Y1 (bytes 32..63). The per-lane pack here and per-lane unpack at the
// end apply inverse byte permutations, so no cross-lane fixup is needed.
// Clobbers Y0..Y6.
#define PRODUCT_BLOCK_AVX2 \
	VPSLLW $8, Y0, Y2        \ // L = low symbol bytes of both vectors
	VPSRLW $8, Y2, Y2        \
	VPSLLW $8, Y1, Y3        \
	VPSRLW $8, Y3, Y3        \
	VPACKUSWB Y3, Y2, Y2     \
	VPSRLW $8, Y0, Y3        \ // H = high symbol bytes of both vectors
	VPSRLW $8, Y1, Y1        \
	VPACKUSWB Y1, Y3, Y3     \
	VPAND  Y7, Y2, Y4        \ // n0 = L & 0x0f
	VPSHUFB Y4, Y8, Y5       \ // rlo  = lo[0][n0]
	VPSHUFB Y4, Y12, Y6      \ // rhi  = hi[0][n0]
	VPSRLW $4, Y2, Y2        \ // n1 = (L >> 4) & 0x0f
	VPAND  Y7, Y2, Y2        \
	VPSHUFB Y2, Y9, Y4       \
	VPXOR  Y4, Y5, Y5        \ // rlo ^= lo[1][n1]
	VPSHUFB Y2, Y13, Y4      \
	VPXOR  Y4, Y6, Y6        \ // rhi ^= hi[1][n1]
	VPAND  Y7, Y3, Y4        \ // n2 = H & 0x0f
	VPSHUFB Y4, Y10, Y0      \
	VPXOR  Y0, Y5, Y5        \ // rlo ^= lo[2][n2]
	VPSHUFB Y4, Y14, Y0      \
	VPXOR  Y0, Y6, Y6        \ // rhi ^= hi[2][n2]
	VPSRLW $4, Y3, Y3        \ // n3 = (H >> 4) & 0x0f
	VPAND  Y7, Y3, Y3        \
	VPSHUFB Y3, Y11, Y0      \
	VPXOR  Y0, Y5, Y5        \ // rlo ^= lo[3][n3]
	VPSHUFB Y3, Y15, Y0      \
	VPXOR  Y0, Y6, Y6        \ // rhi ^= hi[3][n3]
	VPUNPCKLBW Y6, Y5, Y0    \ // re-interleave: symbols 0..7 | 8..15
	VPUNPCKHBW Y6, Y5, Y1    \ // symbols 16..23 | 24..31

// func gf16MulAVX2(lo, hi *[4][16]byte, dst, src *byte, n int)
// dst = products of src; n % 64 == 0, n > 0.
TEXT ·gf16MulAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	LOAD_TABLES_AVX2

mulLoopAVX2:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	PRODUCT_BLOCK_AVX2
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	JNE     mulLoopAVX2
	VZEROUPPER
	RET

// func gf16MulAddAVX2(lo, hi *[4][16]byte, dst, src *byte, n int)
// dst ^= products of src; n % 64 == 0, n > 0.
TEXT ·gf16MulAddAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	LOAD_TABLES_AVX2

mulAddLoopAVX2:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	PRODUCT_BLOCK_AVX2
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	JNE     mulAddLoopAVX2
	VZEROUPPER
	RET
