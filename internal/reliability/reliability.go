// Package reliability estimates the mean time to data loss (MTTDL) of an
// f-fault-tolerant erasure scheme over n disks — the quantity cloud
// operators actually trade against the read performance this repo measures.
//
// Two estimators are provided and cross-checked in tests:
//
//   - Analytic: the classic birth-death Markov chain on the number of
//     concurrently failed disks (states 0..f, absorbing at f+1), with
//     exponential disk lifetimes (rate λ per disk) and exponential repairs.
//     Expected absorption time is obtained by solving the tridiagonal
//     hitting-time system exactly.
//   - Monte Carlo: seeded discrete-event simulation of the same process,
//     for validation and for policies the chain cannot express.
//
// Repair rate ties back to the coding scheme: recovering one disk reads
// RepairReadElements elements from survivors, so richer codes (lower
// recovery cost, e.g. LRC's local repair) repair faster and survive longer.
package reliability

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Model describes the failure/repair process of one array.
type Model struct {
	// Disks is the array width n.
	Disks int
	// FaultTolerance is f: data is lost when f+1 disks are down at once.
	FaultTolerance int
	// MTTFDisk is a single disk's mean time to failure (1/λ).
	MTTFDisk time.Duration
	// MTTR is the mean time to repair one failed disk (1/μ). Repairs
	// proceed one at a time (a dedicated rebuild process), matching the
	// classic MTTDL derivations.
	MTTR time.Duration
}

// Validate reports whether the model is well formed.
func (m Model) Validate() error {
	if m.Disks < 1 {
		return fmt.Errorf("reliability: need at least one disk, got %d", m.Disks)
	}
	if m.FaultTolerance < 0 || m.FaultTolerance >= m.Disks {
		return fmt.Errorf("reliability: tolerance %d out of [0,%d)", m.FaultTolerance, m.Disks)
	}
	if m.MTTFDisk <= 0 || m.MTTR <= 0 {
		return fmt.Errorf("reliability: MTTF and MTTR must be positive")
	}
	return nil
}

// MTTDL solves the Markov hitting-time system exactly and returns the mean
// time from an all-healthy array to data loss, in hours.
//
// With T_i the expected remaining time in state i (i disks failed),
// failure rate a_i = (n-i)·λ and repair rate b_i = μ (serial repair, i ≥ 1,
// b_0 = 0):
//
//	T_i = 1/(a_i+b_i) + a_i/(a_i+b_i)·T_{i+1} + b_i/(a_i+b_i)·T_{i-1}
//
// Writing T_i = α_i + β_i·T_{i+1}, β_0 = 1 gives β_i = 1 for every i by
// induction, so the system telescopes to T_0 = Σ α_i with
// α_0 = 1/a_0 and α_i = (1 + μ·α_{i-1})/a_i. This closed recurrence is
// numerically stable (all terms positive); naive tridiagonal elimination
// is not — the pivot a_i + μ(1-β_{i-1}) cancels catastrophically when
// μ ≫ λ, the practically universal regime.
func MTTDL(m Model) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	n := m.Disks
	f := m.FaultTolerance
	lambda := 1 / m.MTTFDisk.Hours()
	mu := 1 / m.MTTR.Hours()

	alpha := 1 / (float64(n) * lambda)
	total := alpha
	for i := 1; i <= f; i++ {
		alpha = (1 + mu*alpha) / (float64(n-i) * lambda)
		total += alpha
	}
	return total, nil
}

// SimulateMTTDL estimates MTTDL by seeded Monte Carlo over `runs`
// independent array lifetimes, returning the mean time to data loss in
// hours. Used to validate the analytic model and available for repair
// policies the chain cannot express.
func SimulateMTTDL(m Model, runs int, seed int64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if runs < 1 {
		return 0, fmt.Errorf("reliability: need at least one run")
	}
	rng := rand.New(rand.NewSource(seed))
	lambda := 1 / m.MTTFDisk.Hours()
	mu := 1 / m.MTTR.Hours()
	var total float64
	for r := 0; r < runs; r++ {
		clock := 0.0
		failed := 0
		for failed <= m.FaultTolerance {
			failRate := float64(m.Disks-failed) * lambda
			repairRate := 0.0
			if failed > 0 {
				repairRate = mu
			}
			rate := failRate + repairRate
			clock += rng.ExpFloat64() / rate
			if rng.Float64() < failRate/rate {
				failed++
			} else {
				failed--
			}
		}
		total += clock
	}
	return total / float64(runs), nil
}

// RepairModel derives a repair time from a scheme's recovery workload:
// rebuilding one disk reads repairReadElements elements of elemBytes from
// survivors and writes elementsPerDisk elements, at diskMBps effective
// bandwidth; detectDelay covers failure detection and replacement
// provisioning.
func RepairModel(repairReadElements, elementsPerDisk, elemBytes int, diskMBps float64, detectDelay time.Duration) time.Duration {
	bytes := float64((repairReadElements + elementsPerDisk) * elemBytes)
	seconds := bytes / (diskMBps * 1e6)
	return detectDelay + time.Duration(seconds*float64(time.Second))
}

// NinesOfDurability converts an MTTDL (hours) and a mission time into
// "nines": -log10(P(loss within mission)), assuming the loss process is
// approximately exponential with mean MTTDL.
func NinesOfDurability(mttdlHours float64, mission time.Duration) float64 {
	if mttdlHours <= 0 {
		return 0
	}
	p := 1 - math.Exp(-mission.Hours()/mttdlHours)
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(p)
}
