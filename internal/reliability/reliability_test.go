package reliability

import (
	"math"
	"testing"
	"time"
)

func baseModel() Model {
	return Model{
		Disks:          10,
		FaultTolerance: 2,
		MTTFDisk:       100_000 * time.Hour, // ~11 years, a realistic drive
		MTTR:           24 * time.Hour,
	}
}

func TestValidate(t *testing.T) {
	if err := baseModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{Disks: 0, FaultTolerance: 0, MTTFDisk: time.Hour, MTTR: time.Hour},
		{Disks: 3, FaultTolerance: 3, MTTFDisk: time.Hour, MTTR: time.Hour},
		{Disks: 3, FaultTolerance: -1, MTTFDisk: time.Hour, MTTR: time.Hour},
		{Disks: 3, FaultTolerance: 1, MTTFDisk: 0, MTTR: time.Hour},
		{Disks: 3, FaultTolerance: 1, MTTFDisk: time.Hour, MTTR: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d validated", i)
		}
	}
	if _, err := MTTDL(bad[0]); err == nil {
		t.Error("MTTDL accepted invalid model")
	}
	if _, err := SimulateMTTDL(bad[0], 10, 1); err == nil {
		t.Error("Simulate accepted invalid model")
	}
	if _, err := SimulateMTTDL(baseModel(), 0, 1); err == nil {
		t.Error("Simulate accepted zero runs")
	}
}

func TestMTTDLMatchesClosedFormTolerance1(t *testing.T) {
	// For f=1 the chain has two transient states with the classic closed
	// form: T0 = 1/(nλ) + T1, T1 = (1 + μ·T0/( (n-1)λ+μ ))... solved:
	// T0 = ((2n-1)λ + μ) / (n(n-1)λ²).
	m := Model{Disks: 8, FaultTolerance: 1, MTTFDisk: 50_000 * time.Hour, MTTR: 12 * time.Hour}
	got, err := MTTDL(m)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 1 / m.MTTFDisk.Hours()
	mu := 1 / m.MTTR.Hours()
	n := float64(m.Disks)
	want := ((2*n-1)*lambda + mu) / (n * (n - 1) * lambda * lambda)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("MTTDL = %v, closed form %v", got, want)
	}
}

func TestMTTDLToleranceZero(t *testing.T) {
	// f=0: any failure loses data; MTTDL = 1/(nλ).
	m := Model{Disks: 5, FaultTolerance: 0, MTTFDisk: 1000 * time.Hour, MTTR: time.Hour}
	got, err := MTTDL(m)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000.0 / 5
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("MTTDL = %v, want %v", got, want)
	}
}

func TestMTTDLMonotonicity(t *testing.T) {
	m := baseModel()
	base, _ := MTTDL(m)

	higherTol := m
	higherTol.FaultTolerance = 3
	ht, _ := MTTDL(higherTol)
	if ht <= base {
		t.Fatalf("higher tolerance did not raise MTTDL: %v vs %v", ht, base)
	}

	fasterRepair := m
	fasterRepair.MTTR = 6 * time.Hour
	fr, _ := MTTDL(fasterRepair)
	if fr <= base {
		t.Fatalf("faster repair did not raise MTTDL: %v vs %v", fr, base)
	}

	moreDisks := m
	moreDisks.Disks = 20
	md, _ := MTTDL(moreDisks)
	if md >= base {
		t.Fatalf("more disks at equal tolerance did not lower MTTDL: %v vs %v", md, base)
	}
}

func TestSimulationAgreesWithAnalytic(t *testing.T) {
	// Use a deliberately failure-prone model so the simulation converges
	// quickly: MTTF 100h, MTTR 10h, f=1.
	m := Model{Disks: 6, FaultTolerance: 1, MTTFDisk: 100 * time.Hour, MTTR: 10 * time.Hour}
	analytic, err := MTTDL(m)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateMTTDL(m, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := sim / analytic; ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("simulation %v vs analytic %v (ratio %.3f) outside 5%%", sim, analytic, ratio)
	}
}

func TestSimulationDeterministic(t *testing.T) {
	m := Model{Disks: 4, FaultTolerance: 1, MTTFDisk: 100 * time.Hour, MTTR: 10 * time.Hour}
	a, _ := SimulateMTTDL(m, 500, 7)
	b, _ := SimulateMTTDL(m, 500, 7)
	if a != b {
		t.Fatal("same seed diverged")
	}
	c, _ := SimulateMTTDL(m, 500, 8)
	if a == c {
		t.Fatal("different seeds agreed exactly (suspicious)")
	}
}

func TestRepairModel(t *testing.T) {
	// 90 reads + 15 writes of 1 MB at 50 MB/s = 105 MB / 50 MBps = 2.1 s,
	// plus 30 s detection.
	got := RepairModel(90, 15, 1e6, 50, 30*time.Second)
	want := 30*time.Second + 2100*time.Millisecond
	if got != want {
		t.Fatalf("RepairModel = %v, want %v", got, want)
	}
}

func TestRepairSpeedMattersLRCvsRS(t *testing.T) {
	// LRC(6,2,2) repairs a data element with k/l = 3 reads where RS(6,3)
	// needs k = 6, so its rebuild is faster.
	elemPerDisk := 100
	rsRepair := RepairModel(6*elemPerDisk, elemPerDisk, 1e6, 50, time.Minute)
	lrcRepair := RepairModel(3*elemPerDisk, elemPerDisk, 1e6, 50, time.Minute)
	if lrcRepair >= rsRepair {
		t.Fatal("LRC repair must be faster")
	}
	// At EQUAL geometry, faster repair strictly raises MTTDL (the knob the
	// repair speed actually controls).
	m := Model{Disks: 10, FaultTolerance: 3, MTTFDisk: 100_000 * time.Hour}
	m.MTTR = rsRepair
	slow, _ := MTTDL(m)
	m.MTTR = lrcRepair
	fast, _ := MTTDL(m)
	if fast <= slow {
		t.Fatalf("faster repair MTTDL %v not above slower %v", fast, slow)
	}
	// At their TRUE geometries the comparison is a genuine trade: LRC's
	// repair advantage (~9% per state, cubed) does not overcome its extra
	// disk of failure exposure (10·9·8·7 vs 9·8·7·6 failure paths), so
	// RS(6,3) is the more durable of the two at equal tolerance — a fact
	// the Azure paper concedes by selling LRC on repair *cost*, not MTTDL.
	rsT, _ := MTTDL(Model{Disks: 9, FaultTolerance: 3, MTTFDisk: 100_000 * time.Hour, MTTR: rsRepair})
	lrcT, _ := MTTDL(Model{Disks: 10, FaultTolerance: 3, MTTFDisk: 100_000 * time.Hour, MTTR: lrcRepair})
	if ratio := rsT / lrcT; ratio < 1.0 || ratio > 2.0 {
		t.Fatalf("RS/LRC MTTDL ratio %.2f outside the expected (1,2] trade window", ratio)
	}
}

func TestNinesOfDurability(t *testing.T) {
	if NinesOfDurability(0, time.Hour) != 0 {
		t.Fatal("zero MTTDL must give zero nines")
	}
	// Mission much shorter than MTTDL: p ≈ mission/mttdl.
	nines := NinesOfDurability(1e9, 8760*time.Hour) // 1e9 h MTTDL, 1 year
	if nines < 5 || nines > 5.1 {
		t.Fatalf("nines = %v, want ≈5.06", nines)
	}
	// Longer mission → fewer nines.
	if NinesOfDurability(1e9, 87600*time.Hour) >= nines {
		t.Fatal("longer mission must lower durability")
	}
}

func BenchmarkMTTDL(b *testing.B) {
	m := baseModel()
	for i := 0; i < b.N; i++ {
		if _, err := MTTDL(m); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMTTDLStableInFastRepairRegime(t *testing.T) {
	// Regression: μ ≫ λ once produced negative MTTDL via catastrophic
	// cancellation in tridiagonal elimination. The stable recurrence must
	// stay positive and monotone in tolerance across extreme ratios.
	prev := 0.0
	for f := 0; f <= 6; f++ {
		m := Model{Disks: 16, FaultTolerance: f,
			MTTFDisk: 1_000_000 * time.Hour, MTTR: 10 * time.Minute}
		got, err := MTTDL(m)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Fatalf("f=%d: MTTDL %v not positive/increasing (prev %v)", f, got, prev)
		}
		prev = got
	}
}
