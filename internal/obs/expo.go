package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Prometheus text exposition (format 0.0.4). Families render in registration
// order, series in creation order, so scrapes are deterministic and tests
// can pin them down. Histograms render cumulative le-buckets plus _sum and
// _count, exactly as a Prometheus client would.

// famSnapshot is one family's render view, captured under the registry lock
// so a concurrent lookup creating new series cannot race the scrape.
type famSnapshot struct {
	name, help string
	kind       kind
	series     []*series
}

// WriteText renders every registered metric to w. Every view of a registry
// renders the same full output — base labels scope series creation, not
// scrapes — so one /metrics handler serves all components.
func (r *Registry) WriteText(w io.Writer) error {
	// Snapshot family and series lists under the lock, then render without
	// it: instrument reads are atomic, and scrapes must not stall the hot
	// path.
	c := r.core
	c.mu.Lock()
	fams := make([]famSnapshot, 0, len(c.order))
	for _, name := range c.order {
		f := c.families[name]
		snap := famSnapshot{name: f.name, help: f.help, kind: f.kind}
		for _, sig := range f.order {
			snap.series = append(snap.series, f.series[sig])
		}
		fams = append(fams, snap)
	}
	c.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelSignature(s.labels), s.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelSignature(s.labels), formatFloat(s.g.Value()))
			case kindHistogram:
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with the
// le label appended to the series labels, then _sum and _count.
func writeHistogram(w io.Writer, name string, s *series) {
	h := s.h
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.labels, formatFloat(bound)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelSignature(s.labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelSignature(s.labels), h.Count())
}

// withLE renders labels plus the bucket's le label.
func withLE(labels []Label, le string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: "le", Value: le})
	return labelSignature(all)
}

// formatFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are legal).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry as a scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
