package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriteTextFormat pins the exposition output byte for byte: families in
// registration order, series in creation order, HELP/TYPE lines, cumulative
// histogram buckets, label escaping.
func TestWriteTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reads_total", "Total reads.", L("disk", "0")).Add(3)
	reg.Counter("reads_total", "Total reads.", L("disk", "1")).Add(5)
	reg.Gauge("temp", "Temperature.").Set(1.5)
	h := reg.Histogram("lat_seconds", "Latency.", []float64{1, 2}, L("op", "get"))
	h.Observe(0.5)
	h.Observe(1)   // boundary: lands in le="1"
	h.Observe(1.5) // le="2"
	h.Observe(9)   // +Inf only
	reg.Counter("odd_total", "Weird labels.", L("name", `a"b\c`+"\n")).Inc()

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP reads_total Total reads.`,
		`# TYPE reads_total counter`,
		`reads_total{disk="0"} 3`,
		`reads_total{disk="1"} 5`,
		`# HELP temp Temperature.`,
		`# TYPE temp gauge`,
		`temp 1.5`,
		`# HELP lat_seconds Latency.`,
		`# TYPE lat_seconds histogram`,
		`lat_seconds_bucket{op="get",le="1"} 2`,
		`lat_seconds_bucket{op="get",le="2"} 3`,
		`lat_seconds_bucket{op="get",le="+Inf"} 4`,
		`lat_seconds_sum{op="get"} 12`,
		`lat_seconds_count{op="get"} 4`,
		`# HELP odd_total Weird labels.`,
		`# TYPE odd_total counter`,
		`odd_total{name="a\"b\\c\n"} 1`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "").Inc()
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "up_total 1") {
		t.Fatalf("scrape missing counter:\n%s", buf.String())
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp2.StatusCode)
	}
}
