package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same (name, labels) returns the same instrument.
	if c2 := reg.Counter("x_total", "help"); c2 != c {
		t.Fatal("counter lookup not idempotent")
	}
	// Different labels are distinct series.
	if c3 := reg.Counter("x_total", "help", L("disk", "0")); c3 == c {
		t.Fatal("labelled series aliases the unlabelled one")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	StartSpan(nil).End()
	var sp Span
	sp.End()
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	reg.GaugeFunc("gf", "", func() float64 { return 7 })
	if got := reg.Gauge("gf", "").Value(); got != 7 {
		t.Fatalf("func gauge = %v, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins down the le semantics: an observation
// equal to a bound lands in that bound's bucket, one epsilon above lands in
// the next, and values beyond the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 2.1, 4.0, 4.5, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // le=1:{0.5,1.0} le=2:{1.5,2.0} le=4:{2.1,4.0} +Inf:{4.5,100}
	for i := range want {
		if got := h.buckets[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if got, wantSum := h.Sum(), 0.5+1+1.5+2+2.1+4+4.5+100; math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

// TestHistogramUnsortedBuckets: bounds are sorted at registration, so callers
// may pass them in any order.
func TestHistogramUnsortedBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{4, 1, 2})
	h.Observe(1.5)
	if got := h.buckets[1].Load(); got != 1 {
		t.Fatalf("1.5 landed in bucket with count %d at le=2, want 1", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 4)
	for i, want := range []float64{1, 3, 5, 7} {
		if lin[i] != want {
			t.Fatalf("LinearBuckets[%d] = %v, want %v", i, lin[i], want)
		}
	}
	exp := ExpBuckets(1, 4, 3)
	for i, want := range []float64{1, 4, 16} {
		if exp[i] != want {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, exp[i], want)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("m", "")
}

// TestRegistryConcurrency hammers every operation — series creation,
// increments, observations, and scrapes — from many goroutines at once, and
// then checks the totals. Run under -race this is the registry's thread-
// safety proof.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const (
		workers = 16
		perW    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lbl := L("w", string(rune('a'+w%4)))
			for i := 0; i < perW; i++ {
				reg.Counter("conc_total", "h", lbl).Inc()
				reg.Histogram("conc_hist", "h", []float64{1, 10, 100}, lbl).Observe(float64(i % 128))
				reg.Gauge("conc_gauge", "h", lbl).Add(1)
				if i%100 == 0 {
					var sink discard
					if err := reg.WriteText(&sink); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, v := range []string{"a", "b", "c", "d"} {
		total += reg.Counter("conc_total", "h", L("w", v)).Value()
	}
	if want := int64(workers * perW); total != want {
		t.Fatalf("concurrent counter total = %d, want %d", total, want)
	}
	var hcount int64
	for _, v := range []string{"a", "b", "c", "d"} {
		hcount += reg.Histogram("conc_hist", "h", nil, L("w", v)).Count()
	}
	if want := int64(workers * perW); hcount != want {
		t.Fatalf("concurrent histogram count = %d, want %d", hcount, want)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestWithNamespacing(t *testing.T) {
	reg := NewRegistry()
	gw := reg.With(L("component", "gateway"))
	node := reg.With(L("component", "node"))

	// Identical metric name + call-site labels through two views must be
	// distinct series — this is exactly the gateway + embedded-node-in-one-
	// test-binary collision With exists to prevent.
	a := gw.Counter("ecfrm_requests_total", "h", L("op", "get"))
	b := node.Counter("ecfrm_requests_total", "h", L("op", "get"))
	if a == b {
		t.Fatal("views with distinct base labels returned the same series")
	}
	a.Add(3)
	b.Add(5)
	if a.Value() != 3 || b.Value() != 5 {
		t.Fatalf("series values cross-contaminated: %d, %d", a.Value(), b.Value())
	}

	// Same view + same labels stays idempotent.
	if gw.Counter("ecfrm_requests_total", "h", L("op", "get")) != a {
		t.Fatal("lookup through the same view was not idempotent")
	}
	// Chained With composes base labels.
	g3 := gw.With(L("group", "3")).Gauge("ecfrm_depth", "h")
	g3.Set(7)

	var buf bytes.Buffer
	if err := node.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ecfrm_requests_total{component="gateway",op="get"} 3`,
		`ecfrm_requests_total{component="node",op="get"} 5`,
		`ecfrm_depth{component="gateway",group="3"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}
