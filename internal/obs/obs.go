// Package obs is the repo's zero-dependency observability kit: a named
// registry of counters, gauges, and fixed-bucket histograms built on
// sync/atomic, rendered in the Prometheus text exposition format, plus
// lightweight span timing for pipeline stages.
//
// The paper's whole argument is a load statement — spreading data over all n
// disks lowers the load on the most-loaded disk and thereby bounds read
// latency — and this package is how the live system exposes that statement
// as numbers: per-disk element counters, a max-load-per-request histogram,
// cache and latency distributions, all scrapeable from GET /metrics.
//
// Design constraints, in order:
//
//   - Zero external dependencies. Everything is hand-rolled on sync/atomic;
//     go.mod does not change. The exposition format is the stable,
//     line-oriented subset of Prometheus text format 0.0.4.
//   - Hot-path cheap. Instruments are looked up (and created) once, through
//     the locked registry, then held by the instrumented code; Inc/Add/
//     Observe touch only atomics. A nil instrument is a no-op, so call sites
//     need no "is observability on?" branches.
//   - Deterministic output. Families render in registration order and series
//     in creation order, so tests can assert on scrapes byte-for-byte.
//
// Typical use:
//
//	reg := obs.NewRegistry()
//	reads := reg.Counter("ecfrm_disk_element_reads_total",
//	    "Element reads served per disk.", obs.L("disk", "3"))
//	reads.Inc()
//	lat := reg.Histogram("ecfrm_http_request_seconds",
//	    "Request latency.", obs.ExpBuckets(1e-4, 4, 8), obs.L("op", "get"))
//	defer obs.StartSpan(lat).End()
//	mux.Handle("/metrics", reg.Handler())
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric series.
type Label struct{ Key, Value string }

// L builds a Label; it keeps call sites short.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is unusable;
// obtain counters from a Registry. A nil *Counter is a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta, which must be non-negative (counters are monotonic).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	if delta < 0 {
		panic("obs: counter decrement")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. A nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
	fn   atomic.Pointer[func() float64]
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add folds delta into the gauge with a CAS loop (safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (calling the callback for func gauges).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if fn := g.fn.Load(); fn != nil {
		return (*fn)()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value (Prometheus "le" semantics), with
// an implicit +Inf bucket, plus a running sum and count. All operations are
// atomic; Observe never allocates. A nil *Histogram is a valid no-op.
type Histogram struct {
	bounds  []float64 // sorted ascending upper bounds; +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-folded
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (typically < 20): a linear scan beats binary search
	// on branch prediction and is trivially correct at the boundaries.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Span times one region of code into a histogram of seconds. The zero Span
// (and any span over a nil histogram) is a no-op, so instrumented code works
// identically whether or not observability is wired up.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan opens a span recording into h on End.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End closes the span, observing its duration in seconds.
func (sp Span) End() {
	if sp.h != nil {
		sp.h.ObserveSince(sp.t0)
	}
}

// LinearBuckets returns count upper bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns count upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// kind discriminates metric families in the exposition output.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instrument inside a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histogram families only; shared by all series
	order  []string  // label signatures in creation order
	series map[string]*series
}

// Registry holds named metric families and renders them as Prometheus text.
// All methods are safe for concurrent use. Get-or-create is idempotent:
// asking for an existing (name, labels) pair returns the same instrument, so
// instrumented layers can be wired independently and still share series.
//
// A Registry is a *view* onto a shared family store: With derives a view
// that stamps extra base labels onto every instrument it creates, so two
// components instantiated in one process (a gateway plus an embedded data
// node, or one store per placement group) can reuse identical metric names
// without colliding on series — same name, disjoint label sets. All views
// of one registry render into the same /metrics scrape.
type Registry struct {
	core *registryCore
	base []Label // labels this view prepends to every instrument
}

// registryCore is the family store every view of a registry shares.
type registryCore struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{core: &registryCore{families: make(map[string]*family)}}
}

// With returns a view of the same registry whose instruments all carry the
// given labels in addition to (and before) their call-site labels. Views are
// cheap, immutable, and compose: reg.With(L("component","gateway")).With(
// L("group","3")) stamps both. Series created through different views with
// distinct base labels never collide, even for identical metric names.
func (r *Registry) With(labels ...Label) *Registry {
	base := make([]Label, 0, len(r.base)+len(labels))
	base = append(base, r.base...)
	base = append(base, labels...)
	return &Registry{core: r.core, base: base}
}

// lookup returns (creating if needed) the family and the series for labels.
func (r *Registry) lookup(name, help string, k kind, bounds []float64, labels []Label) *series {
	if len(r.base) > 0 {
		all := make([]Label, 0, len(r.base)+len(labels))
		all = append(all, r.base...)
		all = append(all, labels...)
		labels = all
	}
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, bounds: bounds, series: make(map[string]*series)}
		c.families[name] = f
		c.order = append(c.order, name)
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, k, f.kind))
	}
	sig := labelSignature(labels)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{
				bounds:  f.bounds,
				buckets: make([]atomic.Int64, len(f.bounds)+1),
			}
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time —
// for mirroring values something else already maintains (cache bytes, queue
// depths) without double accounting.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindGauge, nil, labels).g.fn.Store(&fn)
}

// Histogram returns the histogram for (name, labels), creating it on first
// use. Buckets are the sorted upper bounds (an implicit +Inf bucket is
// appended); every series of one family shares the family's buckets — the
// buckets argument of later calls is ignored.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return r.lookup(name, help, kindHistogram, bounds, labels).h
}

// labelSignature renders labels into the exact {k="v",...} form used in the
// exposition output; it doubles as the series map key.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	out := "{"
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return out + "}"
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}
