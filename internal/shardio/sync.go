package shardio

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// Sync makes an encoded shard directory durable: every disk shard file, the
// manifest, and the directory itself are fsynced, in that order. Encode and
// EncodeStream deliberately leave flushing to the OS (bulk encoding is
// throughput-bound); callers that need the crash-safety of the store's
// FsyncAlways discipline run Sync once after encoding — a directory Sync
// returns from survives a crash or power cut in its entirety.
//
// Missing disk files are skipped (a degraded directory is still a valid
// one); a missing manifest is an error, since a directory without one can
// never be decoded.
func Sync(scheme *core.Scheme, dir string) error {
	for d := 0; d < scheme.N(); d++ {
		if err := syncFile(DiskFile(dir, d)); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("shardio: sync disk %d: %w", d, err)
		}
	}
	if err := syncFile(filepath.Join(dir, manifestFile)); err != nil {
		return fmt.Errorf("shardio: sync manifest: %w", err)
	}
	if err := syncFile(dir); err != nil {
		return fmt.Errorf("shardio: sync directory: %w", err)
	}
	return nil
}

// syncFile opens path read-only and fsyncs it. Works for directories too:
// on the filesystems that require directory fsync for rename/create
// durability, this is how it is issued.
func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
