package shardio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/rs"
)

// Fault-propagation tests for the streaming pipeline: an erroring or
// stalling source/sink must surface its first error promptly — no deadlock,
// no goroutine leak, no poisoned buffer arenas.

var errBoom = errors.New("boom")

// streamLeakCheck fails the test if it leaves goroutines behind, giving
// pipeline workers a grace window to observe shutdown.
func streamLeakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}

// withTimeout fails the test if fn does not return within d — the
// deadlock detector for every fault path here.
func withTimeout(t *testing.T, d time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("stream did not return within %v (deadlocked?)", d)
		return nil
	}
}

// faultyReader serves limit bytes (stalling stall per Read) then errors.
type faultyReader struct {
	r     io.Reader
	limit int
	stall time.Duration
}

func (f *faultyReader) Read(p []byte) (int, error) {
	if f.stall > 0 {
		time.Sleep(f.stall)
	}
	if f.limit <= 0 {
		return 0, errBoom
	}
	if len(p) > f.limit {
		p = p[:f.limit]
	}
	n, err := f.r.Read(p)
	f.limit -= n
	return n, err
}

// faultyWriter accepts limit bytes (stalling stall per Write) then errors.
type faultyWriter struct {
	limit int
	stall time.Duration
}

func (f *faultyWriter) Write(p []byte) (int, error) {
	if f.stall > 0 {
		time.Sleep(f.stall)
	}
	if len(p) > f.limit {
		f.limit = 0
		return 0, errBoom
	}
	f.limit -= len(p)
	return len(p), nil
}

func faultScheme() *core.Scheme { return core.MustScheme(rs.Must(4, 2), layout.FormECFRM) }

// encodeDir encodes a payload into a fresh shard directory for the
// decode/verify fault tests.
func encodeDir(t *testing.T, scheme *core.Scheme, payload []byte) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := EncodeStream(scheme, bytes.NewReader(payload), dir, 64, Manifest{}, 3); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestEncodeStreamSourceFaults: a source that errors (or crawls, then
// errors) mid-payload fails the encode with that exact error, promptly,
// with all workers reaped.
func TestEncodeStreamSourceFaults(t *testing.T) {
	scheme := faultScheme()
	stripeBytes := scheme.DataPerStripe() * 64
	payload := make([]byte, 8*stripeBytes)
	rand.New(rand.NewSource(1)).Read(payload)
	for name, stall := range map[string]time.Duration{"erroring": 0, "stalling": 2 * time.Millisecond} {
		t.Run(name, func(t *testing.T) {
			streamLeakCheck(t)
			src := &faultyReader{r: bytes.NewReader(payload), limit: 3*stripeBytes + 7, stall: stall}
			err := withTimeout(t, 10*time.Second, func() error {
				_, err := EncodeStream(scheme, src, t.TempDir(), 64, Manifest{}, 3)
				return err
			})
			if !errors.Is(err, errBoom) {
				t.Fatalf("err = %v, want the source's error", err)
			}
		})
	}
}

// TestDecodeStreamSinkFaults: a sink that errors (or crawls, then errors)
// mid-payload aborts the decode with that error — workers ahead of the
// consumer are discarded, not deadlocked on the order channel.
func TestDecodeStreamSinkFaults(t *testing.T) {
	scheme := faultScheme()
	stripeBytes := scheme.DataPerStripe() * 64
	payload := make([]byte, 8*stripeBytes)
	rand.New(rand.NewSource(2)).Read(payload)
	dir := encodeDir(t, scheme, payload)
	for name, stall := range map[string]time.Duration{"erroring": 0, "stalling": 2 * time.Millisecond} {
		t.Run(name, func(t *testing.T) {
			streamLeakCheck(t)
			sink := &faultyWriter{limit: 2*stripeBytes + 13, stall: stall}
			err := withTimeout(t, 10*time.Second, func() error {
				_, err := DecodeStream(scheme, dir, sink, 3)
				return err
			})
			if !errors.Is(err, errBoom) {
				t.Fatalf("err = %v, want the sink's error", err)
			}
		})
	}
}

// TestDecodeStreamSourceFault: a shard directory whose disk files cannot
// supply the stripes the manifest promises surfaces an error, not a hang
// or a silently short payload.
func TestDecodeStreamSourceFault(t *testing.T) {
	streamLeakCheck(t)
	scheme := faultScheme()
	stripeBytes := scheme.DataPerStripe() * 64
	payload := make([]byte, 6*stripeBytes)
	rand.New(rand.NewSource(3)).Read(payload)
	dir := encodeDir(t, scheme, payload)
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Stripes *= 2
	man.Length *= 2
	if err := writeManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	derr := withTimeout(t, 10*time.Second, func() error {
		_, err := DecodeStream(scheme, dir, io.Discard, 3)
		return err
	})
	if derr == nil {
		t.Fatal("decode past the end of the disk files succeeded")
	}
}

// TestVerifyStreamSourceFault: same short-source fault through the verify
// pipeline — first error out, no deadlock.
func TestVerifyStreamSourceFault(t *testing.T) {
	streamLeakCheck(t)
	scheme := faultScheme()
	payload := make([]byte, 4*scheme.DataPerStripe()*64)
	rand.New(rand.NewSource(4)).Read(payload)
	dir := encodeDir(t, scheme, payload)
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Stripes++
	if err := writeManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	verr := withTimeout(t, 10*time.Second, func() error {
		return VerifyStream(scheme, dir, 3)
	})
	if verr == nil {
		t.Fatal("verify past the end of the disk files succeeded")
	}
}

// TestPipelineDiscardExactlyOnce pins the discard contract at the pipeline
// layer: after the first error, every emitted job is either consumed or
// discarded — exactly one of the two, never both, none dropped. A job
// double-released to a buffer arena would alias two future GetShards.
func TestPipelineDiscardExactlyOnce(t *testing.T) {
	streamLeakCheck(t)
	var mu sync.Mutex
	emitted, consumed, discarded := []int{}, map[int]int{}, map[int]int{}
	err := pipeline(4,
		func(emit func(int) bool) error {
			for i := 0; i < 100; i++ {
				if !emit(i) {
					return nil
				}
				mu.Lock()
				emitted = append(emitted, i)
				mu.Unlock()
			}
			return nil
		},
		func(i int) error {
			if i == 13 {
				return fmt.Errorf("job %d: %w", i, errBoom)
			}
			return nil
		},
		func(i int) error { consumed[i]++; return nil },
		func(i int) { discarded[i]++ },
	)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the worker's error", err)
	}
	for _, i := range emitted {
		if consumed[i]+discarded[i] != 1 {
			t.Fatalf("job %d consumed %d times, discarded %d times; want exactly one release",
				i, consumed[i], discarded[i])
		}
	}
	for i := 0; i < 13; i++ {
		if consumed[i] != 1 {
			t.Fatalf("job %d precedes the failure but was not consumed", i)
		}
	}
	if discarded[13] != 1 {
		t.Fatal("the failing job itself must be discarded, not consumed")
	}
}

// TestEncodeStreamAbortLeavesNoPartialManifest: a faulted encode must not
// leave a manifest behind — a half-written directory that parses as
// complete would decode garbage.
func TestEncodeStreamAbortLeavesNoPartialManifest(t *testing.T) {
	streamLeakCheck(t)
	scheme := faultScheme()
	stripeBytes := scheme.DataPerStripe() * 64
	dir := t.TempDir()
	src := &faultyReader{r: rand.New(rand.NewSource(5)), limit: 2 * stripeBytes}
	if _, err := EncodeStream(scheme, src, dir, 64, Manifest{}, 3); !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the source's error", err)
	}
	if _, err := os.Stat(DiskFile(dir, 0)); err != nil {
		t.Skipf("no disk files written before abort: %v", err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("aborted encode left a readable manifest")
	}
}
