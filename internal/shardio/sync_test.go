package shardio

import (
	"os"
	"testing"
)

func TestSyncShardDirectory(t *testing.T) {
	dir := t.TempDir()
	encodeSample(t, dir, 50_000, 9)
	if err := Sync(scheme622(t), dir); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	// Degraded directories sync too: losing shard files must not fail.
	if err := os.Remove(DiskFile(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if err := Sync(scheme622(t), dir); err != nil {
		t.Fatalf("Sync degraded: %v", err)
	}

	// A manifest-less directory can never decode; Sync refuses it.
	empty := t.TempDir()
	if err := Sync(scheme622(t), empty); err == nil {
		t.Fatal("Sync accepted a directory without a manifest")
	}
}
