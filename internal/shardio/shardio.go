// Package shardio encodes files into per-disk shard directories and decodes
// them back — the durable, file-system-visible form of an EC-FRM stripe set.
// A shard directory holds one binary file per disk (that disk's cells in
// stripe/row order) plus a JSON manifest describing the scheme, element
// size, stripe count, and original payload length.
//
// Decoding tolerates up to the scheme's fault tolerance in missing disk
// files; Verify parity-checks every stripe of a complete directory. This is
// the library behind cmd/ecfrm.
package shardio

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core"
)

// ErrManifest flags a missing or malformed shard-directory manifest.
var ErrManifest = errors.New("shardio: bad manifest")

// ErrCorrupt is returned by Verify when stripes fail their parity check.
var ErrCorrupt = errors.New("shardio: parity verification failed")

// Manifest records everything needed to decode a shard directory. Scheme
// construction parameters are stored so callers can rebuild the scheme; the
// decode functions take the scheme explicitly and validate against Name.
type Manifest struct {
	Code     string `json:"code"` // "rs", "lrc", "crs", ...
	K        int    `json:"k"`
	L        int    `json:"l,omitempty"`
	M        int    `json:"m"`
	Form     string `json:"form"`
	Scheme   string `json:"scheme"` // scheme.Name(), for validation
	ElemSize int    `json:"elem_size"`
	Stripes  int    `json:"stripes"`
	Length   int64  `json:"length"`
}

// DiskFile returns the path of disk d's shard file within dir.
func DiskFile(dir string, d int) string {
	return filepath.Join(dir, fmt.Sprintf("disk_%02d.shard", d))
}

const manifestFile = "manifest.json"

// ReadManifest loads and parses a shard directory's manifest.
func ReadManifest(dir string) (Manifest, error) {
	var man Manifest
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return man, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return man, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	if man.ElemSize < 1 || man.Stripes < 0 || man.Length < 0 {
		return man, fmt.Errorf("%w: nonsensical geometry %+v", ErrManifest, man)
	}
	return man, nil
}

// Encode writes payload into dir as a shard directory under the scheme with
// elemSize-byte elements, returning the manifest it wrote. The extra
// manifest fields (Code, K, L, M, Form) identify the scheme for tools that
// reconstruct it from the directory alone.
func Encode(scheme *core.Scheme, payload []byte, dir string, elemSize int, man Manifest) (Manifest, error) {
	if elemSize < 1 {
		return man, fmt.Errorf("shardio: element size %d must be positive", elemSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return man, err
	}
	lay := scheme.Layout()
	n := scheme.N()
	stripeBytes := scheme.DataPerStripe() * elemSize
	stripes := (len(payload) + stripeBytes - 1) / stripeBytes
	if stripes == 0 {
		stripes = 1
	}
	// Each disk image is preallocated to its exact final size, and one cells
	// slice carries across stripes so EncodeStripeInto reuses the parity
	// buffers it placed there (full-size data elements alias the payload,
	// which is safe: appends below copy them out before the next stripe).
	disks := make([][]byte, n)
	perDisk := stripes * lay.Rows() * elemSize
	for d := range disks {
		disks[d] = make([]byte, 0, perDisk)
	}
	var bufs core.Buffers
	cells := make([][]byte, scheme.CellsPerStripe())
	data := make([][]byte, scheme.DataPerStripe())
	for st := 0; st < stripes; st++ {
		for e := range data {
			off := st*stripeBytes + e*elemSize
			if end := off + elemSize; end <= len(payload) {
				data[e] = payload[off:end]
			} else {
				// Zero-padded tail element (at most one stripe's worth).
				shard := make([]byte, elemSize)
				if off < len(payload) {
					copy(shard, payload[off:])
				}
				data[e] = shard
			}
		}
		if err := scheme.EncodeStripeInto(&bufs, cells, data); err != nil {
			return man, err
		}
		for row := 0; row < lay.Rows(); row++ {
			for col := 0; col < n; col++ {
				d := lay.Disk(st, col)
				disks[d] = append(disks[d], cells[row*n+col]...)
			}
		}
	}
	for d := range disks {
		if err := os.WriteFile(DiskFile(dir, d), disks[d], 0o644); err != nil {
			return man, err
		}
	}
	man.Scheme = scheme.Name()
	man.ElemSize = elemSize
	man.Stripes = stripes
	man.Length = int64(len(payload))
	return man, writeManifest(dir, man)
}

// loadDisks reads the present disk files, returning nil entries for missing
// ones and the count of missing files.
func loadDisks(scheme *core.Scheme, dir string, man Manifest) ([][]byte, int, error) {
	if man.Scheme != "" && man.Scheme != scheme.Name() {
		return nil, 0, fmt.Errorf("%w: directory encoded as %s, scheme is %s",
			ErrManifest, man.Scheme, scheme.Name())
	}
	lay := scheme.Layout()
	want := man.Stripes * lay.Rows() * man.ElemSize
	disks := make([][]byte, scheme.N())
	missing := 0
	for d := range disks {
		b, err := os.ReadFile(DiskFile(dir, d))
		if err != nil {
			if os.IsNotExist(err) {
				missing++
				continue
			}
			return nil, 0, err
		}
		if len(b) != want {
			return nil, 0, fmt.Errorf("shardio: disk %d has %d bytes, want %d", d, len(b), want)
		}
		disks[d] = b
	}
	return disks, missing, nil
}

// stripeCells slices stripe st's cells out of the disk files (nil for
// missing disks).
func stripeCells(scheme *core.Scheme, disks [][]byte, man Manifest, st int) [][]byte {
	lay := scheme.Layout()
	n := scheme.N()
	perStripe := lay.Rows() * man.ElemSize
	cells := make([][]byte, scheme.CellsPerStripe())
	for row := 0; row < lay.Rows(); row++ {
		for col := 0; col < n; col++ {
			d := lay.Disk(st, col)
			if disks[d] == nil {
				continue
			}
			off := st*perStripe + row*man.ElemSize
			cells[row*n+col] = disks[d][off : off+man.ElemSize]
		}
	}
	return cells
}

// Decode reconstructs the original payload from dir, tolerating missing
// disk files up to the scheme's fault tolerance. It returns the payload and
// the number of missing disks it decoded through.
func Decode(scheme *core.Scheme, dir string) ([]byte, int, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, 0, err
	}
	disks, missing, err := loadDisks(scheme, dir, man)
	if err != nil {
		return nil, 0, err
	}
	// Capacity covers the padded final stripe too, so the append loop never
	// reallocates (man.Length alone falls short by the padding).
	payload := make([]byte, 0, man.Stripes*scheme.DataPerStripe()*man.ElemSize)
	for st := 0; st < man.Stripes; st++ {
		cells := stripeCells(scheme, disks, man, st)
		if missing > 0 {
			if err := scheme.ReconstructStripe(cells); err != nil {
				return nil, missing, fmt.Errorf("stripe %d: %w", st, err)
			}
		}
		for _, shard := range scheme.DataShards(cells) {
			payload = append(payload, shard...)
		}
	}
	if int64(len(payload)) < man.Length {
		return nil, missing, fmt.Errorf("shardio: decoded %d bytes, manifest says %d", len(payload), man.Length)
	}
	return payload[:man.Length], missing, nil
}

// Verify parity-checks every stripe of a complete shard directory and
// returns the corrupt stripe indices inside ErrCorrupt (nil error if clean).
// All disk files must be present. It streams the directory through
// VerifyStream with one worker per CPU.
func Verify(scheme *core.Scheme, dir string) error {
	return VerifyStream(scheme, dir, runtime.GOMAXPROCS(0))
}
