package shardio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Streaming I/O: EncodeStream, DecodeStream, and VerifyStream process a
// shard directory one stripe at a time through a bounded worker pipeline, so
// peak memory is O(workers × stripe) instead of O(payload). The pipeline
// preserves stripe order end to end — bytes leave in exactly the order the
// buffered paths produce them, which the property tests pin down.

// streamBufSize is the bufio buffer per disk file, large enough that the OS
// sees sequential megabyte-sized requests (read-ahead on decode,
// write-behind on encode) even with small elements.
const streamBufSize = 1 << 20

// pipeJob pairs a job value with the channel its worker reports on.
type pipeJob[J any] struct {
	val  J
	done chan error
}

// pipeline fans jobs out to `workers` goroutines while delivering them to
// consume in strict emission order, holding at most workers+1 jobs in
// flight — that bound is the streaming paths' whole memory story.
//
// produce emits jobs through its callback and must stop when the callback
// returns false (a downstream error aborted the run). work runs on a worker
// goroutine and must publish its results by mutating shared state the job
// points at (jobs travel by value); consume runs on the caller's goroutine
// in emission order. The first error from any stage wins.
//
// discard (optional) reclaims a job's pooled resources when its consume
// never runs — the job's own work failed, or an earlier error aborted the
// run. It is never called for a job that reached consume, even if consume
// itself failed: consume owns the job's buffers from its first instruction,
// and a second release would hand the same backing array to the pool twice.
func pipeline[J any](workers int, produce func(emit func(J) bool) error,
	work func(J) error, consume func(J) error, discard func(J)) error {
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan pipeJob[J])
	order := make(chan pipeJob[J], workers)
	var abort atomic.Bool

	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				j.done <- work(j.val)
			}
		}()
	}

	var prodErr error
	go func() {
		prodErr = produce(func(v J) bool {
			if abort.Load() {
				return false
			}
			j := pipeJob[J]{val: v, done: make(chan error, 1)}
			order <- j // reserves the in-flight slot, keeps emission order
			jobs <- j
			return true
		})
		close(jobs)
		close(order)
	}()

	var firstErr error
	for j := range order {
		err := <-j.done
		consumed := false
		if err == nil && firstErr == nil {
			err = consume(j.val)
			consumed = true
		}
		if err != nil && firstErr == nil {
			firstErr = err
			abort.Store(true)
		}
		if !consumed && discard != nil {
			discard(j.val)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return prodErr
}

// writeManifest finalizes and writes a shard directory's manifest.
func writeManifest(dir string, man Manifest) error {
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestFile), mb, 0o644)
}

// stripeJob is one stripe moving through a streaming pipeline. The producer
// allocates the cells header before emitting, so the worker's in-place
// writes are visible to the consumer; payload is the encode-side chunk the
// data cells alias into (nil on decode/verify).
type stripeJob struct {
	st      int
	payload []byte
	cells   [][]byte
}

// EncodeStream encodes r into dir as a shard directory, one stripe at a
// time: a bounded pool of workers runs the zero-allocation EncodeStripeInto
// over recycled buffers while the finished cells stream to buffered per-disk
// writers in stripe order. Output is byte-identical to Encode, with peak
// memory O(workers × stripe) regardless of payload size.
func EncodeStream(scheme *core.Scheme, r io.Reader, dir string, elemSize int, man Manifest, workers int) (Manifest, error) {
	if elemSize < 1 {
		return man, fmt.Errorf("shardio: element size %d must be positive", elemSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return man, err
	}
	lay := scheme.Layout()
	n := scheme.N()
	dps := scheme.DataPerStripe()
	stripeBytes := dps * elemSize

	files := make([]*os.File, n)
	writers := make([]*bufio.Writer, n)
	closeAll := func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}
	for d := 0; d < n; d++ {
		f, err := os.Create(DiskFile(dir, d))
		if err != nil {
			closeAll()
			return man, err
		}
		files[d] = f
		writers[d] = bufio.NewWriterSize(f, streamBufSize)
	}

	// dataIdx marks the cell slots that alias the payload chunk, so the
	// consumer knows which cells return to which arena.
	dataIdx := make([]bool, scheme.CellsPerStripe())
	for e := 0; e < dps; e++ {
		p := lay.DataPos(e)
		dataIdx[p.Row*n+p.Col] = true
	}

	var payloadBufs, cellBufs core.Buffers // separate arenas: different sizes
	var length int64
	stripes := 0

	err := pipeline(workers,
		func(emit func(stripeJob) bool) error {
			for st := 0; ; st++ {
				// The produce span covers the source read only, not the emit:
				// blocking in emit is pipeline backpressure, and folding it in
				// would blame the source for a slow encoder or sink.
				sp := stageSpan("encode", "produce")
				buf := payloadBufs.GetShard(stripeBytes)
				nr, err := io.ReadFull(r, buf)
				if err == io.EOF && st > 0 {
					payloadBufs.PutShard(buf)
					sp.End()
					return nil
				}
				if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
					payloadBufs.PutShard(buf)
					sp.End()
					return err
				}
				// Zero the padding: a short (or empty) final chunk still
				// encodes as a full stripe, like the buffered path. An empty
				// payload yields exactly one zero stripe.
				clear(buf[nr:])
				length += int64(nr)
				stripes++
				last := err != nil
				sp.End()
				if !emit(stripeJob{st: st, payload: buf, cells: make([][]byte, scheme.CellsPerStripe())}) || last {
					return nil
				}
			}
		},
		func(j stripeJob) error {
			defer stageSpan("encode", "work").End()
			data := make([][]byte, dps)
			for e := range data {
				data[e] = j.payload[e*elemSize : (e+1)*elemSize]
			}
			return scheme.EncodeStripeInto(&cellBufs, j.cells, data)
		},
		func(j stripeJob) error {
			defer stageSpan("encode", "commit").End()
			for row := 0; row < lay.Rows(); row++ {
				for col := 0; col < n; col++ {
					d := lay.Disk(j.st, col)
					if _, err := writers[d].Write(j.cells[row*n+col]); err != nil {
						return err
					}
				}
			}
			for i, c := range j.cells {
				if !dataIdx[i] {
					cellBufs.PutShard(c)
				}
			}
			payloadBufs.PutShard(j.payload)
			return nil
		},
		func(j stripeJob) {
			// Skipped stripe: recycle whatever parity cells the worker got
			// around to allocating (data cells alias the payload chunk) and
			// the chunk itself, so an aborted run leaves the arenas whole.
			for i, c := range j.cells {
				if !dataIdx[i] {
					cellBufs.PutShard(c)
				}
			}
			payloadBufs.PutShard(j.payload)
		},
	)
	if err != nil {
		closeAll()
		return man, err
	}
	for d := 0; d < n; d++ {
		if err := writers[d].Flush(); err != nil {
			closeAll()
			return man, err
		}
		if err := files[d].Close(); err != nil {
			files[d] = nil
			closeAll()
			return man, err
		}
		files[d] = nil
	}
	man.Scheme = scheme.Name()
	man.ElemSize = elemSize
	man.Stripes = stripes
	man.Length = length
	return man, writeManifest(dir, man)
}

// DecodeStream reconstructs the payload of dir onto w one stripe at a time,
// tolerating missing disk files up to the scheme's fault tolerance. Workers
// run the reconstruction; the producer reads ahead through buffered per-disk
// readers; output bytes stream to w in order, byte-identical to Decode. It
// returns the number of missing disks it decoded through.
func DecodeStream(scheme *core.Scheme, dir string, w io.Writer, workers int) (int, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return 0, err
	}
	if man.Scheme != "" && man.Scheme != scheme.Name() {
		return 0, fmt.Errorf("%w: directory encoded as %s, scheme is %s",
			ErrManifest, man.Scheme, scheme.Name())
	}
	readers, missing, closeAll, err := openDisks(scheme, dir, man)
	if err != nil {
		return 0, err
	}
	defer closeAll()

	var cellBufs core.Buffers
	remaining := man.Length
	err = pipeline(workers,
		func(emit func(stripeJob) bool) error {
			for st := 0; st < man.Stripes; st++ {
				sp := stageSpan("decode", "produce")
				cells, err := readStripe(scheme, readers, man, st, &cellBufs)
				sp.End()
				if err != nil {
					return err
				}
				if !emit(stripeJob{st: st, cells: cells}) {
					cellBufs.PutShards(cells)
					return nil
				}
			}
			return nil
		},
		func(j stripeJob) error {
			defer stageSpan("decode", "work").End()
			if missing == 0 {
				return nil
			}
			if err := scheme.ReconstructStripeInto(&cellBufs, j.cells); err != nil {
				return fmt.Errorf("stripe %d: %w", j.st, err)
			}
			return nil
		},
		func(j stripeJob) error {
			defer stageSpan("decode", "commit").End()
			for _, shard := range scheme.DataShards(j.cells) {
				if remaining <= 0 {
					break
				}
				m := int64(len(shard))
				if m > remaining {
					m = remaining
				}
				if _, err := w.Write(shard[:m]); err != nil {
					return err
				}
				remaining -= m
			}
			cellBufs.PutShards(j.cells)
			return nil
		},
		func(j stripeJob) { cellBufs.PutShards(j.cells) },
	)
	if err != nil {
		return missing, err
	}
	if remaining > 0 {
		return missing, fmt.Errorf("shardio: decoded %d bytes short of manifest length %d", remaining, man.Length)
	}
	return missing, nil
}

// VerifyStream parity-checks every stripe of a complete shard directory
// across a worker pool, returning the corrupt stripe indices inside
// ErrCorrupt (nil error if clean). All disk files must be present.
func VerifyStream(scheme *core.Scheme, dir string, workers int) error {
	man, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	if man.Scheme != "" && man.Scheme != scheme.Name() {
		return fmt.Errorf("%w: directory encoded as %s, scheme is %s",
			ErrManifest, man.Scheme, scheme.Name())
	}
	readers, missing, closeAll, err := openDisks(scheme, dir, man)
	if err != nil {
		return err
	}
	defer closeAll()
	if missing > 0 {
		return fmt.Errorf("shardio: verify needs every disk file (%d missing)", missing)
	}

	var cellBufs core.Buffers
	// Workers flag corrupt stripes here rather than failing the pipeline: a
	// parity mismatch is a sweep result, not an abort. Each worker writes
	// only its own stripe's slot, and the pipeline's shutdown orders those
	// writes before the collection loop below.
	corrupt := make([]bool, man.Stripes)
	err = pipeline(workers,
		func(emit func(stripeJob) bool) error {
			for st := 0; st < man.Stripes; st++ {
				sp := stageSpan("verify", "produce")
				cells, err := readStripe(scheme, readers, man, st, &cellBufs)
				sp.End()
				if err != nil {
					return err
				}
				if !emit(stripeJob{st: st, cells: cells}) {
					cellBufs.PutShards(cells)
					return nil
				}
			}
			return nil
		},
		func(j stripeJob) error {
			defer stageSpan("verify", "work").End()
			ok, err := scheme.VerifyStripe(j.cells)
			if err != nil {
				return err
			}
			if !ok {
				corrupt[j.st] = true
			}
			return nil
		},
		func(j stripeJob) error {
			defer stageSpan("verify", "commit").End()
			cellBufs.PutShards(j.cells)
			return nil
		},
		func(j stripeJob) { cellBufs.PutShards(j.cells) },
	)
	if err != nil {
		return err
	}
	var bad []int
	for st, c := range corrupt {
		if c {
			bad = append(bad, st)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("%w: stripes %v", ErrCorrupt, bad)
	}
	return nil
}

// readStripe reads stripe st's cells from the per-disk readers into buffers
// drawn from bufs, leaving nil cells for missing disks. Disk files store
// cells in stripe/row order, so consuming them stripe by stripe keeps every
// reader sequential.
//
// Devices are read concurrently — the fan-out counterpart of the store's
// read executor: each device's rows land in distinct cell slots and each
// reader is touched only by its own goroutine (readStripe has a single
// caller at a time, so per-reader consumption stays sequential). On failure
// the lowest-numbered device's error is reported and every drawn buffer is
// recycled.
func readStripe(scheme *core.Scheme, readers []*bufio.Reader, man Manifest, st int, bufs *core.Buffers) ([][]byte, error) {
	lay := scheme.Layout()
	n := scheme.N()
	cells := make([][]byte, scheme.CellsPerStripe())
	errs := make([]error, n)
	var wg sync.WaitGroup
	for d := 0; d < n; d++ {
		if readers[d] == nil {
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			col := lay.Col(st, d)
			for row := 0; row < lay.Rows(); row++ {
				cell := bufs.GetShard(man.ElemSize)
				if _, err := io.ReadFull(readers[d], cell); err != nil {
					bufs.PutShard(cell)
					errs[d] = err
					return
				}
				cells[row*n+col] = cell
			}
		}(d)
	}
	wg.Wait()
	for d, err := range errs {
		if err != nil {
			bufs.PutShards(cells)
			return nil, fmt.Errorf("shardio: disk %d stripe %d: %w", d, st, err)
		}
	}
	return cells, nil
}

// openDisks opens every present disk file behind a large buffered reader,
// validating sizes, and returns the readers (nil entries for missing files),
// the missing count, and a close-all func.
func openDisks(scheme *core.Scheme, dir string, man Manifest) ([]*bufio.Reader, int, func(), error) {
	want := int64(man.Stripes) * int64(scheme.Layout().Rows()) * int64(man.ElemSize)
	n := scheme.N()
	files := make([]*os.File, n)
	readers := make([]*bufio.Reader, n)
	closeAll := func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}
	missing := 0
	for d := 0; d < n; d++ {
		f, err := os.Open(DiskFile(dir, d))
		if err != nil {
			if os.IsNotExist(err) {
				missing++
				continue
			}
			closeAll()
			return nil, 0, nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			closeAll()
			return nil, 0, nil, err
		}
		if fi.Size() != want {
			closeAll()
			return nil, 0, nil, fmt.Errorf("shardio: disk %d has %d bytes, want %d", d, fi.Size(), want)
		}
		files[d] = f
		readers[d] = bufio.NewReaderSize(f, streamBufSize)
	}
	return readers, missing, closeAll, nil
}
