package shardio

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

func scheme622(t testing.TB) *core.Scheme {
	t.Helper()
	return core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
}

func encodeSample(t *testing.T, dir string, size int, seed int64) ([]byte, Manifest) {
	t.Helper()
	payload := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(payload)
	man, err := Encode(scheme622(t), payload, dir, 512,
		Manifest{Code: "lrc", K: 6, L: 2, M: 2, Form: "ecfrm"})
	if err != nil {
		t.Fatal(err)
	}
	return payload, man
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload, man := encodeSample(t, dir, 100_000, 1)
	if man.Length != 100_000 || man.Stripes < 1 || man.Scheme != "EC-FRM-LRC(6,2,2)" {
		t.Fatalf("manifest wrong: %+v", man)
	}
	got, missing, err := Decode(scheme622(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: missing=%d equal=%v", missing, bytes.Equal(got, payload))
	}
}

func TestDecodeWithMissingDisks(t *testing.T) {
	dir := t.TempDir()
	payload, _ := encodeSample(t, dir, 50_000, 2)
	// Remove the full fault tolerance (3 disks).
	for _, d := range []int{1, 4, 8} {
		if err := os.Remove(DiskFile(dir, d)); err != nil {
			t.Fatal(err)
		}
	}
	got, missing, err := Decode(scheme622(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("triple-loss decode failed: missing=%d", missing)
	}
	// A fourth loss must fail.
	if err := os.Remove(DiskFile(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(scheme622(t), dir); err == nil {
		t.Fatal("4 missing disks must fail for tolerance 3")
	}
}

func TestVerifyCleanAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	encodeSample(t, dir, 40_000, 3)
	if err := Verify(scheme622(t), dir); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in a shard file.
	path := DiskFile(dir, 5)
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Verify(scheme622(t), dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not flagged: %v", err)
	}
	// Verify with a missing disk refuses.
	if err := os.Remove(DiskFile(dir, 2)); err != nil {
		t.Fatal(err)
	}
	if err := Verify(scheme622(t), dir); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("verify with missing disk: %v", err)
	}
}

func TestDecodeRejectsWrongScheme(t *testing.T) {
	dir := t.TempDir()
	encodeSample(t, dir, 10_000, 4)
	wrong := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	if _, _, err := Decode(wrong, dir); !errors.Is(err, ErrManifest) {
		t.Fatalf("wrong scheme: %v", err)
	}
}

func TestReadManifestErrors(t *testing.T) {
	if _, err := ReadManifest(t.TempDir()); !errors.Is(err, ErrManifest) {
		t.Fatalf("missing manifest: %v", err)
	}
	dir := t.TempDir()
	os.WriteFile(dir+"/manifest.json", []byte("{nonsense"), 0o644)
	if _, err := ReadManifest(dir); !errors.Is(err, ErrManifest) {
		t.Fatalf("malformed manifest: %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(scheme622(t), []byte("x"), t.TempDir(), 0, Manifest{}); err == nil {
		t.Fatal("zero element size must fail")
	}
}

func TestTruncatedShardFileRejected(t *testing.T) {
	dir := t.TempDir()
	encodeSample(t, dir, 20_000, 5)
	path := DiskFile(dir, 3)
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-10], 0o644)
	if _, _, err := Decode(scheme622(t), dir); err == nil {
		t.Fatal("truncated shard file must fail")
	}
}

func TestEmptyPayloadStillOneStripe(t *testing.T) {
	dir := t.TempDir()
	man, err := Encode(scheme622(t), nil, dir, 64, Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	if man.Stripes != 1 || man.Length != 0 {
		t.Fatalf("empty payload manifest: %+v", man)
	}
	got, _, err := Decode(scheme622(t), dir)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty decode: %v, %d bytes", err, len(got))
	}
}
