package shardio

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Streaming-pipeline observability: per-stage span timings for the three
// streaming operations. Each stripe's trip through a pipeline is timed at
// each stage —
//
//	produce  reading the stripe's bytes (payload chunk or per-disk cells)
//	work     the coding step (encode / reconstruct / verify)
//	commit   writing the stripe out in order (disk writers or the sink)
//
// — into ecfrm_shardio_stage_seconds{op,stage}. The stage whose histogram
// carries the time is the pipeline's bottleneck; that is the first thing to
// look at when streaming throughput disappoints.
//
// The hook is package-level because the streaming entry points are free
// functions: EnableMetrics publishes a bundle atomically, so concurrent
// pipelines observe either the old bundle or the new one, never a torn one.
// With no bundle installed every span is a no-op.

// stageBuckets spans 10µs to ~2.6s exponentially: stripe-granularity stages
// are fast (tens of µs to ms) except when a slow sink or source stalls them.
var stageBuckets = obs.ExpBuckets(1e-5, 4, 9)

// streamMetrics holds one histogram per (op, stage) pair.
type streamMetrics struct {
	hists map[string]*obs.Histogram
}

var activeMetrics atomic.Pointer[streamMetrics]

// EnableMetrics registers the streaming pipeline's stage histograms in reg
// and routes all subsequent span timings there. Passing nil disables them.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		activeMetrics.Store(nil)
		return
	}
	m := &streamMetrics{hists: make(map[string]*obs.Histogram)}
	for _, op := range []string{"encode", "decode", "verify"} {
		for _, stage := range []string{"produce", "work", "commit"} {
			m.hists[op+"/"+stage] = reg.Histogram("ecfrm_shardio_stage_seconds",
				"Per-stripe time in each streaming pipeline stage.",
				stageBuckets, obs.L("op", op), obs.L("stage", stage))
		}
	}
	activeMetrics.Store(m)
}

// stageSpan opens a span for one stripe's trip through (op, stage). The
// zero-value span returned when metrics are off costs two loads and no time
// syscalls.
func stageSpan(op, stage string) obs.Span {
	m := activeMetrics.Load()
	if m == nil {
		return obs.Span{}
	}
	return obs.StartSpan(m.hists[op+"/"+stage])
}
