package shardio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

// readDir reads every disk file and the manifest of a shard directory for
// byte-level comparison between the buffered and streaming encoders.
func readDir(t *testing.T, scheme *core.Scheme, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for d := 0; d < scheme.N(); d++ {
		b, err := os.ReadFile(DiskFile(dir, d))
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("disk%02d", d)] = b
	}
	b, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	out["manifest"] = b
	return out
}

// TestStreamMatchesBufferedProperty is the central equivalence property:
// across layouts, codes, element sizes, odd payload sizes, and worker
// counts, EncodeStream writes byte-identical shard directories to Encode,
// and DecodeStream returns byte-identical payloads to Decode — including
// decodes through missing disks.
func TestStreamMatchesBufferedProperty(t *testing.T) {
	schemes := map[string]*core.Scheme{
		"lrc-standard": core.MustScheme(lrc.Must(6, 2, 2), layout.FormStandard),
		"lrc-rotated":  core.MustScheme(lrc.Must(6, 2, 2), layout.FormRotated),
		"lrc-ecfrm":    core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM),
		"rs-ecfrm":     core.MustScheme(rs.Must(6, 3), layout.FormECFRM),
	}
	rng := rand.New(rand.NewSource(99))
	for name, scheme := range schemes {
		for _, elemSize := range []int{64, 512} {
			stripeBytes := scheme.DataPerStripe() * elemSize
			for _, size := range []int{0, 1, elemSize - 1, stripeBytes,
				stripeBytes + 1, 3*stripeBytes - 17, 4 * stripeBytes} {
				for _, workers := range []int{1, 3} {
					label := fmt.Sprintf("%s/elem%d/size%d/w%d", name, elemSize, size, workers)
					payload := make([]byte, size)
					rng.Read(payload)

					bufDir, strDir := t.TempDir(), t.TempDir()
					manBuf, err := Encode(scheme, payload, bufDir, elemSize, Manifest{})
					if err != nil {
						t.Fatalf("%s: buffered encode: %v", label, err)
					}
					manStr, err := EncodeStream(scheme, bytes.NewReader(payload), strDir, elemSize, Manifest{}, workers)
					if err != nil {
						t.Fatalf("%s: stream encode: %v", label, err)
					}
					if manBuf != manStr {
						t.Fatalf("%s: manifests differ:\n%+v\n%+v", label, manBuf, manStr)
					}
					want, got := readDir(t, scheme, bufDir), readDir(t, scheme, strDir)
					for k := range want {
						if !bytes.Equal(want[k], got[k]) {
							t.Fatalf("%s: %s differs between buffered and streaming encode", label, k)
						}
					}

					// Decode the streamed directory both ways, complete.
					var out bytes.Buffer
					missing, err := DecodeStream(scheme, strDir, &out, workers)
					if err != nil || missing != 0 {
						t.Fatalf("%s: stream decode: missing=%d err=%v", label, missing, err)
					}
					if !bytes.Equal(out.Bytes(), payload) {
						t.Fatalf("%s: stream decode payload differs", label)
					}

					// Knock out a tolerated set of disks and decode again.
					rmDisks := rng.Perm(scheme.N())[:scheme.FaultTolerance()]
					for _, d := range rmDisks {
						if err := os.Remove(DiskFile(strDir, d)); err != nil {
							t.Fatal(err)
						}
					}
					out.Reset()
					missing, err = DecodeStream(scheme, strDir, &out, workers)
					if err != nil {
						t.Fatalf("%s: degraded stream decode (missing %v): %v", label, rmDisks, err)
					}
					if missing != len(rmDisks) || !bytes.Equal(out.Bytes(), payload) {
						t.Fatalf("%s: degraded stream decode wrong (missing=%d)", label, missing)
					}
					bufPayload, bufMissing, err := Decode(scheme, strDir)
					if err != nil || bufMissing != missing || !bytes.Equal(bufPayload, out.Bytes()) {
						t.Fatalf("%s: buffered decode of degraded dir disagrees: %v", label, err)
					}
				}
			}
		}
	}
}

// TestDecodeStreamBeyondTolerance mirrors the buffered error contract when
// too many disks are gone.
func TestDecodeStreamBeyondTolerance(t *testing.T) {
	scheme := scheme622(t)
	dir := t.TempDir()
	encodeSample(t, dir, 50_000, 5)
	for d := 0; d <= scheme.FaultTolerance(); d++ {
		if err := os.Remove(DiskFile(dir, d)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := DecodeStream(scheme, dir, io.Discard, 2)
	if !errors.Is(err, core.ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

// TestVerifyStreamDetectsCorruption checks the parallel verifier reports
// exactly the stripes whose cells were flipped, in order.
func TestVerifyStreamDetectsCorruption(t *testing.T) {
	scheme := scheme622(t)
	dir := t.TempDir()
	_, man := encodeSample(t, dir, 6*scheme.DataPerStripe()*512, 7)
	if man.Stripes < 6 {
		t.Fatalf("want ≥6 stripes, got %d", man.Stripes)
	}
	if err := VerifyStream(scheme, dir, 3); err != nil {
		t.Fatalf("clean dir: %v", err)
	}
	// Flip one byte in stripes 1 and 4 on disk 0.
	path := DiskFile(dir, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	perStripe := scheme.Layout().Rows() * man.ElemSize
	b[1*perStripe] ^= 0xff
	b[4*perStripe] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	err = VerifyStream(scheme, dir, 3)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if want := "stripes [1 4]"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("err %q does not list %q", err, want)
	}
}

// TestEncodeStreamPropagatesReadError checks a failing reader aborts the
// pipeline cleanly (no hang, no partial manifest confusion).
func TestEncodeStreamPropagatesReadError(t *testing.T) {
	scheme := scheme622(t)
	boom := errors.New("boom")
	r := io.MultiReader(bytes.NewReader(make([]byte, 10_000)), errReader{boom})
	_, err := EncodeStream(scheme, r, t.TempDir(), 512, Manifest{}, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// TestEncodeStreamEmptyPayload pins the one-zero-stripe rule for empty
// input, matching the buffered encoder.
func TestEncodeStreamEmptyPayload(t *testing.T) {
	scheme := scheme622(t)
	dir := t.TempDir()
	man, err := EncodeStream(scheme, bytes.NewReader(nil), dir, 512, Manifest{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if man.Stripes != 1 || man.Length != 0 {
		t.Fatalf("manifest %+v, want 1 stripe / length 0", man)
	}
	var out bytes.Buffer
	if _, err := DecodeStream(scheme, dir, &out, 1); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("decoded %d bytes from empty payload", out.Len())
	}
}
