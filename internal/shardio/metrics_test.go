package shardio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/rs"
)

// TestStreamStageMetrics: with a registry enabled, every stage of every
// streaming op observes once per stripe; with metrics disabled again, no
// further observations land.
func TestStreamStageMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	scheme := core.MustScheme(rs.Must(4, 2), layout.FormECFRM)
	elem := 512
	stripes := 5
	payload := make([]byte, stripes*scheme.DataPerStripe()*elem)
	rand.New(rand.NewSource(1)).Read(payload)

	dir := filepath.Join(t.TempDir(), "shards")
	if _, err := EncodeStream(scheme, bytes.NewReader(payload), dir, elem, Manifest{}, 2); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := DecodeStream(scheme, dir, &out, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("round trip mismatch")
	}
	if err := VerifyStream(scheme, dir, 2); err != nil {
		t.Fatal(err)
	}

	hist := func(op, stage string) *obs.Histogram {
		return reg.Histogram("ecfrm_shardio_stage_seconds", "", nil,
			obs.L("op", op), obs.L("stage", stage))
	}
	for _, op := range []string{"encode", "decode", "verify"} {
		for _, stage := range []string{"produce", "work", "commit"} {
			want := int64(stripes)
			if op == "encode" && stage == "produce" {
				// The encode producer's final read probes for EOF; that probe
				// is a real source read and is timed like any other.
				want++
			}
			if got := hist(op, stage).Count(); got != want {
				t.Errorf("%s/%s observed %d stripes, want %d", op, stage, got, want)
			}
		}
	}

	// Disabled: spans become no-ops.
	EnableMetrics(nil)
	if _, err := DecodeStream(scheme, dir, &bytes.Buffer{}, 2); err != nil {
		t.Fatal(err)
	}
	if got := hist("decode", "work").Count(); got != int64(stripes) {
		t.Fatalf("disabled metrics still observed: count %d, want %d", got, int64(stripes))
	}
	_ = os.RemoveAll(dir)
}
