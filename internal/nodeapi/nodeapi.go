// Package nodeapi defines the wire protocol between the access gateway and
// the data nodes: URL shapes, the binary cell-run framing, and the JSON
// status types. Both internal/datanode (server) and internal/gateway
// (client) import it, so the two sides cannot drift.
//
// Cell payloads travel in a fixed little-endian binary frame rather than
// JSON — a run is raw device bytes plus checksums, and base64ing megabytes
// of cells through a JSON encoder would dominate the read path:
//
//	offset  size          field
//	0       4             magic "ECRN"
//	4       4             element size (uint32 LE)
//	8       4             cell count   (uint32 LE)
//	12      4*count       per-cell CRC32-C (uint32 LE each)
//	12+4c   elem*count    cell payloads, concatenated in slot order
//
// Checksums ride beside the data end to end: the node stores them verbatim
// and the gateway verifies them, so a torn write on a node disk or a flipped
// bit on the wire both surface as ErrCorrupt at the store layer, never as
// silently wrong object bytes.
package nodeapi

import (
	"encoding/binary"
	"fmt"
)

// Magic starts every cell-run frame.
const Magic = "ECRN"

// runHeaderLen is the fixed prefix before the CRC array.
const runHeaderLen = 12

// MissingHeader marks a 404 that means "slot never stored" — as opposed to
// a 404 from a wrong URL — so the client can map it to store.ErrCellMissing
// (reconstruct from the group) instead of ErrUnavailable (replan around the
// node).
const MissingHeader = "X-Ecfrm-Missing"

// EncodeRun frames count cells (flattened into data, count == len(crcs))
// with their checksums.
func EncodeRun(elem int, data []byte, crcs []uint32) []byte {
	out := make([]byte, runHeaderLen+4*len(crcs)+len(data))
	copy(out, Magic)
	binary.LittleEndian.PutUint32(out[4:], uint32(elem))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(crcs)))
	for i, c := range crcs {
		binary.LittleEndian.PutUint32(out[runHeaderLen+4*i:], c)
	}
	copy(out[runHeaderLen+4*len(crcs):], data)
	return out
}

// DecodeRun parses a cell-run frame, validating the framing invariants
// (magic, element size agreement, exact length).
func DecodeRun(body []byte, wantElem int) (data []byte, crcs []uint32, err error) {
	if len(body) < runHeaderLen || string(body[:4]) != Magic {
		return nil, nil, fmt.Errorf("nodeapi: bad cell-run frame (%d bytes)", len(body))
	}
	elem := int(binary.LittleEndian.Uint32(body[4:]))
	count := int(binary.LittleEndian.Uint32(body[8:]))
	if elem != wantElem {
		return nil, nil, fmt.Errorf("nodeapi: element size %d, want %d", elem, wantElem)
	}
	if count < 1 || count > (1<<22) {
		return nil, nil, fmt.Errorf("nodeapi: cell count %d out of range", count)
	}
	want := runHeaderLen + 4*count + elem*count
	if len(body) != want {
		return nil, nil, fmt.Errorf("nodeapi: frame is %d bytes, want %d for %d cells of %d",
			len(body), want, count, elem)
	}
	crcs = make([]uint32, count)
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint32(body[runHeaderLen+4*i:])
	}
	return body[runHeaderLen+4*count:], crcs, nil
}

// CellsPath is the cell-run endpoint for one (group, disk) extent:
// GET ?slot=&count= reads a run, PUT ?slot= writes the framed body.
func CellsPath(group, disk int) string {
	return fmt.Sprintf("/cells/%d/%d", group, disk)
}

// SyncPath is the durability barrier endpoint (POST).
func SyncPath(group, disk int) string {
	return fmt.Sprintf("/sync/%d/%d", group, disk)
}

// TruncatePath is the truncation endpoint (POST ?slots=).
func TruncatePath(group, disk int) string {
	return fmt.Sprintf("/truncate/%d/%d", group, disk)
}

// MetaPath is the per-extent geometry endpoint (GET → DiskMeta).
func MetaPath(group, disk int) string {
	return fmt.Sprintf("/cells/%d/%d/meta", group, disk)
}

// StatusPath is the whole-node status endpoint (GET → NodeStatus).
const StatusPath = "/node/status"

// DiskMeta is one extent's geometry.
type DiskMeta struct {
	Group    int `json:"group"`
	Disk     int `json:"disk"`
	Slots    int `json:"slots"`    // exclusive upper bound of occupied slots
	Elements int `json:"elements"` // slots actually holding a cell
}

// NodeStatus is the node's self-description.
type NodeStatus struct {
	Backend  string     `json:"backend"` // "mem" or "file"
	ElemSize int        `json:"elem_size"`
	Draining bool       `json:"draining"`
	Disks    []DiskMeta `json:"disks"`
}
