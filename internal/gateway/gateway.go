// Package gateway is the access half of the cluster split: the service that
// owns placement metadata and serves the object API by fanning erasure-coded
// cell I/O out over the network to data nodes.
//
// Architecture: the gateway holds one real store.Store per placement group,
// whose devices are HTTP clients (remoteCell) against the nodes the
// placement map assigns. That one decision buys the whole single-process
// feature set across the process boundary unchanged — the fan-out executor
// coalesces cell runs into single node requests, hedged reads race parity
// reconstruction against slow nodes, degraded replanning routes around dead
// ones (a refused connection surfaces as ErrUnavailable exactly like a
// failed local disk), group-commit WAL writes seal through the two-phase
// gate with the fsync barrier forwarded node-side, and startup recovery can
// re-derive the sealed extents from whatever the nodes kept.
//
// Object names hash across Groups independent stripe groups
// (placement.Map), so capacity and traffic scale horizontally with nodes ×
// groups; per-node inflight and latency EWMAs — not per-disk queues — feed
// the degraded planner, because in this regime contention lives at the node.
//
// The HTTP surface mirrors internal/httpd where it overlaps: PUT/GET/HEAD
// /objects/{name} with the same ?sequential/?concurrency/?hedge query knobs
// and 503+Retry-After semantics, /faults driving the deterministic injector
// on every group store, /metrics, /healthz, /readyz, plus /placement and an
// aggregated /admin/status. There is deliberately no decoded-object cache:
// the gateway exists to measure and serve the networked read path.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/store"
)

// Config configures a gateway.
type Config struct {
	// Nodes are the data-node base URLs (http://host:port). Required.
	Nodes []string
	// Groups is the number of stripe groups names hash across (default 4).
	Groups int
	// ElemSize is the cell size in bytes (default 4096).
	ElemSize int
	// Registry receives gateway and per-group store metrics; nil creates a
	// private one. Group stores register through reg.With(group=G) views, so
	// any number of them share one scrape without series collisions.
	Registry *obs.Registry
	// WAL tunes each group's group-commit write path. LogPath must be empty:
	// durability comes from the nodes' fsync barrier, not a gateway-local
	// spill.
	WAL store.WALConfig
	// Read sets the default read-executor options for every group store.
	Read store.ReadOptions
	// NodeTimeout bounds one node request (default 5s); a hung node turns
	// into ErrUnavailable and a replan once it expires.
	NodeTimeout time.Duration
	// ProbeInterval is the health-probe cadence (default 1s, <0 disables).
	ProbeInterval time.Duration
	// SyncWrites runs the commit-path durability barrier (node-side fsync)
	// before publishing stripes.
	SyncWrites bool
	// Recover re-derives each group's sealed extent from the nodes at
	// startup (the gateway-restart path).
	Recover bool
	// Scheme builds the erasure-coding scheme (required).
	Scheme *core.Scheme
}

// objectMeta locates one object: which group's extent, where in it.
type objectMeta struct {
	Group int   `json:"group"`
	Off   int64 `json:"off"`
	Size  int   `json:"size"`
}

// object is a name reservation that becomes readable when committed flips
// (same protocol as internal/httpd).
type object struct {
	meta      objectMeta
	committed atomic.Bool
}

// Gateway is the access service.
type Gateway struct {
	cfg    Config
	scheme *core.Scheme
	pm     *placement.Map
	nodes  []*nodeClient
	stores []*store.Store
	wals   []*store.WAL
	mux    *http.ServeMux

	mu      sync.RWMutex
	objects map[string]*object

	faultMu   sync.Mutex
	faultPlan faultinject.Plan

	draining atomic.Bool
	formed   atomic.Bool // every node answered at least one probe

	probeStop chan struct{}
	probeDone chan struct{}

	reg     *obs.Registry
	latGet  *obs.Histogram
	latPut  *obs.Histogram
	latHead *obs.Histogram
	probes  *obs.Counter
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

var requestBuckets = obs.ExpBuckets(1e-4, 4, 9)

// New builds a gateway over the configured nodes. The placement map is
// validated against the scheme's fault tolerance: a cluster where one node
// holds more disks of a group than the scheme can lose is refused, because
// the "killed node keeps serving reads" invariant would silently not hold.
func New(cfg Config) (*Gateway, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("gateway: scheme is required")
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("gateway: no nodes")
	}
	if cfg.Groups == 0 {
		cfg.Groups = 4
	}
	if cfg.ElemSize == 0 {
		cfg.ElemSize = 4096
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.WAL.LogPath != "" {
		return nil, fmt.Errorf("gateway: WAL.LogPath is node-side durability's job; must be empty")
	}
	pm, err := placement.New(cfg.Groups, cfg.Scheme.N(), cfg.Nodes)
	if err != nil {
		return nil, err
	}
	if err := pm.CheckTolerance(cfg.Scheme.FaultTolerance()); err != nil {
		return nil, err
	}

	g := &Gateway{
		cfg:       cfg,
		scheme:    cfg.Scheme,
		pm:        pm,
		objects:   make(map[string]*object),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
		reg:       cfg.Registry,
	}
	if g.reg == nil {
		g.reg = obs.NewRegistry()
	}
	gwReg := g.reg.With(obs.L("component", "gateway"))
	g.latGet = gwReg.Histogram("ecfrm_gateway_request_seconds",
		"Gateway object request latency by operation.", requestBuckets, obs.L("op", "get"))
	g.latPut = gwReg.Histogram("ecfrm_gateway_request_seconds",
		"Gateway object request latency by operation.", requestBuckets, obs.L("op", "put"))
	g.latHead = gwReg.Histogram("ecfrm_gateway_request_seconds",
		"Gateway object request latency by operation.", requestBuckets, obs.L("op", "head"))
	g.probes = gwReg.Counter("ecfrm_gateway_probes_total", "Health-probe sweeps completed.")
	gwReg.GaugeFunc("ecfrm_gateway_objects", "Objects stored.", func() float64 {
		g.mu.RLock()
		defer g.mu.RUnlock()
		return float64(len(g.objects))
	})

	for i, base := range cfg.Nodes {
		g.nodes = append(g.nodes, newNodeClient(i, strings.TrimRight(base, "/"), cfg.NodeTimeout, gwReg))
	}

	for grp := 0; grp < cfg.Groups; grp++ {
		grp := grp
		st, _, err := store.NewWithCellBackends(cfg.Scheme, cfg.ElemSize,
			store.CellStoreConfig{Sync: cfg.SyncWrites, Recover: cfg.Recover},
			func(disk int) (store.CellBackend, error) {
				return &remoteCell{
					nc:    g.nodes[pm.Node(grp, disk)],
					group: grp,
					disk:  disk,
					elem:  cfg.ElemSize,
				}, nil
			})
		if err != nil {
			g.shutdownStores()
			return nil, fmt.Errorf("gateway: group %d: %w", grp, err)
		}
		// Per-group metrics live in a labelled view of the shared registry —
		// identical family names, disjoint series (the obs.With contract).
		st.SetMetrics(store.NewMetrics(g.reg.With(obs.L("group", strconv.Itoa(grp))), cfg.Scheme.N()))
		st.SetReadOptions(cfg.Read)
		if err := st.SetDeviceNodes(pm.NodeOf(grp)); err != nil {
			g.shutdownStores()
			return nil, err
		}
		g.stores = append(g.stores, st)
		g.wals = append(g.wals, store.NewWAL(st, cfg.WAL))
	}

	g.routes()
	if cfg.ProbeInterval > 0 {
		go g.probeLoop()
	} else {
		close(g.probeDone)
		g.formed.Store(true)
	}
	return g, nil
}

// Registry returns the registry behind GET /metrics.
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// Placement returns the gateway's placement map.
func (g *Gateway) Placement() *placement.Map { return g.pm }

// Store returns group grp's store (tests reach through for invariants).
func (g *Gateway) Store(grp int) *store.Store { return g.stores[grp] }

func (g *Gateway) shutdownStores() {
	for _, w := range g.wals {
		w.Close()
	}
	for _, st := range g.stores {
		st.Close()
	}
}

// Close drains the write path and stops probing. /readyz fails immediately;
// queued PUTs commit before their WALs shut down.
func (g *Gateway) Close() error {
	if g.draining.Swap(true) {
		return nil
	}
	close(g.probeStop)
	<-g.probeDone
	var err error
	for _, w := range g.wals {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	for _, st := range g.stores {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// probeLoop sweeps every node's /healthz on the configured cadence, feeding
// the per-node up gauges and the cluster-formed latch /readyz gates on.
func (g *Gateway) probeLoop() {
	defer close(g.probeDone)
	timeout := g.cfg.ProbeInterval
	if timeout > time.Second {
		timeout = time.Second
	}
	tick := time.NewTicker(g.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		allSeen := true
		for _, nc := range g.nodes {
			ok := nc.healthz(timeout)
			nc.up.Store(ok)
			if ok {
				nc.seen.Store(true)
				nc.upGauge.Set(1)
			} else {
				nc.upGauge.Set(0)
			}
			if !nc.seen.Load() {
				allSeen = false
			}
		}
		if allSeen {
			g.formed.Store(true)
		}
		g.probes.Inc()
		select {
		case <-g.probeStop:
			return
		case <-tick.C:
		}
	}
}

// NodesUp reports how many nodes answered their latest health probe.
func (g *Gateway) NodesUp() int {
	up := 0
	for _, nc := range g.nodes {
		if nc.up.Load() {
			up++
		}
	}
	return up
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

func (g *Gateway) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("/objects/", g.handleObject)
	mux.HandleFunc("/admin/status", g.handleStatus)
	mux.HandleFunc("/placement", g.handlePlacement)
	mux.HandleFunc("/faults", g.handleFaults)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.Handle("/metrics", g.reg.Handler())
	g.mux = mux
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz gates on cluster formation (every node answered at least one
// probe) and drain. A node dying after formation does NOT flip readiness:
// serving degraded reads through failures is the design, not an outage.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !g.formed.Load() {
		http.Error(w, "cluster not formed", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ready (%d/%d nodes up)\n", g.NodesUp(), len(g.nodes))
}

func (g *Gateway) handleObject(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/objects/")
	if name == "" || strings.Contains(name, "/") {
		http.Error(w, "bad object name", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		defer obs.StartSpan(g.latPut).End()
		g.putObject(w, r, name)
	case http.MethodGet:
		defer obs.StartSpan(g.latGet).End()
		g.getObject(w, r, name)
	case http.MethodHead:
		defer obs.StartSpan(g.latHead).End()
		g.headObject(w, name)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) putObject(w http.ResponseWriter, r *http.Request, name string) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) == 0 {
		http.Error(w, "empty object", http.StatusBadRequest)
		return
	}
	grp := g.pm.GroupOf(name)
	obj := &object{}
	g.mu.Lock()
	if _, exists := g.objects[name]; exists {
		g.mu.Unlock()
		http.Error(w, "object exists (store is append-only)", http.StatusConflict)
		return
	}
	g.objects[name] = obj
	g.mu.Unlock()

	off, err := g.wals[grp].Put(r.Context(), body)
	if err != nil {
		g.mu.Lock()
		delete(g.objects, name)
		g.mu.Unlock()
		switch {
		case errors.Is(err, store.ErrUnavailable):
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.Is(err, store.ErrWALClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case r.Context().Err() != nil:
			http.Error(w, err.Error(), 499)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	obj.meta = objectMeta{Group: grp, Off: off, Size: len(body)}
	obj.committed.Store(true)
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "stored %d bytes in group %d at offset %d\n", len(body), grp, off)
}

func (g *Gateway) lookup(name string) (*object, bool) {
	g.mu.RLock()
	obj, ok := g.objects[name]
	g.mu.RUnlock()
	if !ok || !obj.committed.Load() {
		return nil, false
	}
	return obj, true
}

// parseReadOptions mirrors httpd's per-request executor knobs.
func (g *Gateway) parseReadOptions(r *http.Request, grp int) store.ReadOptions {
	opts := g.stores[grp].ReadDefaults()
	q := r.URL.Query()
	if v := q.Get("sequential"); v != "" {
		if b, err := strconv.ParseBool(v); err == nil {
			opts.Sequential = b
		}
	}
	if v := q.Get("concurrency"); v != "" {
		if c, err := strconv.Atoi(v); err == nil && c > 0 {
			opts.Concurrency = c
		}
	}
	if v := q.Get("hedge"); v != "" {
		if b, err := strconv.ParseBool(v); err == nil {
			opts.Hedge.Enabled = b
		}
	}
	return opts
}

func (g *Gateway) getObject(w http.ResponseWriter, r *http.Request, name string) {
	obj, ok := g.lookup(name)
	if !ok {
		http.Error(w, "no such object", http.StatusNotFound)
		return
	}
	grp := obj.meta.Group
	res, err := g.stores[grp].ReadAtCtx(r.Context(), obj.meta.Off, obj.meta.Size, g.parseReadOptions(r, grp))
	if err != nil {
		if errors.Is(err, store.ErrUnavailable) {
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Read-Cost", fmt.Sprintf("%.3f", res.Plan.Cost()))
	w.Header().Set("X-Max-Disk-Load", strconv.Itoa(res.Plan.MaxLoad()))
	w.Header().Set("X-Placement-Group", strconv.Itoa(grp))
	w.Write(res.Data)
}

func (g *Gateway) headObject(w http.ResponseWriter, name string) {
	obj, ok := g.lookup(name)
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	plan, err := g.stores[obj.meta.Group].PlanRead(obj.meta.Off, obj.meta.Size)
	if err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(obj.meta.Size))
	w.Header().Set("X-Read-Cost", fmt.Sprintf("%.3f", plan.Cost()))
	w.Header().Set("X-Max-Disk-Load", strconv.Itoa(plan.MaxLoad()))
	w.Header().Set("X-Placement-Group", strconv.Itoa(obj.meta.Group))
	w.WriteHeader(http.StatusOK)
}

// ClusterStatus aggregates the gateway's view of the cluster.
type ClusterStatus struct {
	Scheme      string `json:"scheme"`
	Groups      int    `json:"groups"`
	Nodes       int    `json:"nodes"`
	NodesUp     int    `json:"nodes_up"`
	Objects     int    `json:"objects"`
	Bytes       int64  `json:"bytes"`
	Stripes     int    `json:"stripes"`
	FailedDisks []int  `json:"failed_disks_per_group"`
	WALQueued   int    `json:"wal_queued_objects"`
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	g.mu.RLock()
	objects := len(g.objects)
	g.mu.RUnlock()
	st := ClusterStatus{
		Scheme:  g.scheme.Name(),
		Groups:  g.pm.Groups,
		Nodes:   len(g.nodes),
		NodesUp: g.NodesUp(),
		Objects: objects,
	}
	for grp, s := range g.stores {
		st.Bytes += s.Len()
		st.Stripes += s.Stripes()
		st.FailedDisks = append(st.FailedDisks, len(s.FailedDisks()))
		q, _ := g.wals[grp].Depth()
		st.WALQueued += q
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (g *Gateway) handlePlacement(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g.pm)
}

// handleFaults mirrors httpd's deterministic fault-injection surface, but a
// gateway-installed plan drives every group store at once (per-"disk"
// policies apply to the same disk index in each group).
func (g *Gateway) handleFaults(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		g.faultMu.Lock()
		plan := g.faultPlan
		g.faultMu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(plan)
	case http.MethodPut:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		plan, err := faultinject.ParsePlan(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g.faultMu.Lock()
		g.faultPlan = plan
		for _, s := range g.stores {
			s.SetFaultInjector(faultinject.New(plan))
		}
		g.faultMu.Unlock()
		fmt.Fprintf(w, "fault plan installed on %d groups: seed %d, %d policies\n",
			len(g.stores), plan.Seed, len(plan.Policies))
	case http.MethodDelete:
		g.faultMu.Lock()
		g.faultPlan = faultinject.Plan{}
		for _, s := range g.stores {
			s.SetFaultInjector(nil)
		}
		g.faultMu.Unlock()
		fmt.Fprintln(w, "fault plan cleared")
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
