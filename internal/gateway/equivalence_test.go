package gateway

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/datanode"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/obs"
	"repro/internal/rs"
	"repro/internal/store"
)

// schemeGrid is the {RS, LRC, CRS} × {standard, rotated, ecfrm} sweep the
// equivalence property covers — the same grid the single-process fan-out
// tests use, now re-proven across a process boundary.
func schemeGrid(t testing.TB) map[string]*core.Scheme {
	t.Helper()
	cells := make(map[string]*core.Scheme)
	for cname, c := range map[string]codes.Code{
		"rs":  rs.Must(6, 3),
		"lrc": lrc.Must(6, 2, 2),
		"crs": crs.Must(6, 3),
	} {
		for _, form := range []layout.Form{layout.FormStandard, layout.FormRotated, layout.FormECFRM} {
			cells[fmt.Sprintf("%s-%s", cname, form)] = core.MustScheme(c, form)
		}
	}
	return cells
}

// testCluster is N in-process data nodes plus a gateway over them, all
// sharing one obs registry — which is itself a regression test for the
// With-view namespacing: gateway, every group store, and every node register
// identically-named families in one scrape.
type testCluster struct {
	gw      *Gateway
	nodes   []*datanode.Server
	servers []*httptest.Server
}

func newTestCluster(t testing.TB, scheme *core.Scheme, elem, groups, nNodes int, opts store.ReadOptions) *testCluster {
	t.Helper()
	reg := obs.NewRegistry()
	tc := &testCluster{}
	urls := make([]string, nNodes)
	for i := 0; i < nNodes; i++ {
		n, err := datanode.New(datanode.Config{
			ElemSize: elem,
			Registry: reg.With(obs.L("component", "node"), obs.L("node", fmt.Sprint(i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(n)
		tc.nodes = append(tc.nodes, n)
		tc.servers = append(tc.servers, srv)
		urls[i] = srv.URL
	}
	gw, err := New(Config{
		Nodes:         urls,
		Groups:        groups,
		ElemSize:      elem,
		Registry:      reg,
		Scheme:        scheme,
		Read:          opts,
		SyncWrites:    true,
		ProbeInterval: 50 * time.Millisecond,
		NodeTimeout:   5 * time.Second,
		WAL:           store.WALConfig{FlushInterval: time.Millisecond},
	})
	if err != nil {
		tc.teardown()
		t.Fatal(err)
	}
	tc.gw = gw
	return tc
}

func (tc *testCluster) teardown() {
	if tc.gw != nil {
		tc.gw.Close()
	}
	for _, s := range tc.servers {
		s.Close()
	}
	for _, n := range tc.nodes {
		n.Close()
	}
}

// put stores an object through the gateway's HTTP surface.
func (tc *testCluster) put(t testing.TB, name string, body []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPut, "/objects/"+name, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	tc.gw.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT %s: %d %s", name, rec.Code, rec.Body.String())
	}
}

// get reads an object through the gateway's HTTP surface.
func (tc *testCluster) get(t testing.TB, name, query string) ([]byte, int) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/objects/"+name+query, nil)
	rec := httptest.NewRecorder()
	tc.gw.ServeHTTP(rec, req)
	return rec.Body.Bytes(), rec.Code
}

// nodesNeeded picks the smallest cluster (≥3 nodes) where losing one whole
// node stays within the scheme's tolerance in every group.
func nodesNeeded(scheme *core.Scheme) int {
	n, tol := scheme.N(), scheme.FaultTolerance()
	w := (n + tol - 1) / tol
	if w < 3 {
		w = 3
	}
	return w
}

// TestGatewayLocalEquivalence is the acceptance property: the same objects
// PUT through a gateway over in-process networked nodes and into a single
// local store must read back byte-identical — across every code × layout
// cell, through the plain, forced-fanout, and hedged executors, and still
// after one whole node is killed (degraded reads reconstruct over the
// network). Runs under -race via `make race-io`.
func TestGatewayLocalEquivalence(t *testing.T) {
	const elem = 512
	rng := rand.New(rand.NewSource(42))
	for name, scheme := range schemeGrid(t) {
		scheme := scheme
		t.Run(name, func(t *testing.T) {
			tc := newTestCluster(t, scheme, elem, 3, nodesNeeded(scheme), store.ReadOptions{})
			defer tc.teardown()

			// The local twin: one store + WAL fed the same bytes.
			local := store.MustNew(scheme, elem)
			localWAL := store.NewWAL(local, store.WALConfig{FlushInterval: time.Millisecond})
			defer localWAL.Close()

			type obj struct {
				name     string
				payload  []byte
				localOff int64
			}
			var objs []obj
			for i := 0; i < 14; i++ {
				size := 1 + rng.Intn(4*elem*scheme.DataPerStripe()/elem)
				payload := make([]byte, size)
				rng.Read(payload)
				o := obj{name: fmt.Sprintf("obj-%02d", i), payload: payload}
				tc.put(t, o.name, payload)
				off, err := localWAL.Put(context.Background(), payload)
				if err != nil {
					t.Fatalf("local put: %v", err)
				}
				o.localOff = off
				objs = append(objs, o)
			}

			check := func(stage string) {
				for _, o := range objs {
					for _, q := range []string{"", "?sequential=1", "?concurrency=4", "?hedge=1"} {
						got, code := tc.get(t, o.name, q)
						if code != http.StatusOK {
							t.Fatalf("%s: GET %s%s: status %d %s", stage, o.name, q, code, got)
						}
						if !bytes.Equal(got, o.payload) {
							t.Fatalf("%s: GET %s%s: bytes differ from payload", stage, o.name, q)
						}
					}
					res, err := local.ReadAt(o.localOff, len(o.payload))
					if err != nil {
						t.Fatalf("%s: local read %s: %v", stage, o.name, err)
					}
					if !bytes.Equal(res.Data, o.payload) {
						t.Fatalf("%s: local store diverged from payload for %s", stage, o.name)
					}
				}
			}
			check("healthy")

			// Kill one whole node mid-life: every group loses at most
			// tolerance disks, so degraded reads must keep returning exactly
			// the same bytes, reconstructing cells over the network.
			tc.servers[1].Close()
			check("node 1 down")
		})
	}
}

// TestGatewayConcurrentPutGetWithNodeKill exercises the cluster the way the
// smoke test does, in-process and race-detected: concurrent PUTs and GETs
// while a node dies under the load. Reads must never fail or return wrong
// bytes; PUTs may 503 during the outage (writes need every disk) but must
// not corrupt anything.
func TestGatewayConcurrentPutGetWithNodeKill(t *testing.T) {
	scheme := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	const elem = 512
	tc := newTestCluster(t, scheme, elem, 4, nodesNeeded(scheme), store.ReadOptions{})
	defer tc.teardown()

	rng := rand.New(rand.NewSource(7))
	payloads := make(map[string][]byte)
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("pre-%02d", i)
		p := make([]byte, 1+rng.Intn(6*elem))
		rng.Read(p)
		payloads[name] = p
		tc.put(t, name, p)
	}

	stop := make(chan struct{})
	errc := make(chan error, 64)
	for w := 0; w < 4; w++ {
		w := w
		go func() {
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("pre-%02d", r.Intn(24))
				q := ""
				if i%3 == 1 {
					q = "?hedge=1"
				}
				got, code := tc.get(t, name, q)
				if code != http.StatusOK {
					errc <- fmt.Errorf("GET %s: status %d: %s", name, code, got)
					return
				}
				if !bytes.Equal(got, payloads[name]) {
					errc <- fmt.Errorf("GET %s: wrong bytes", name)
					return
				}
			}
		}()
	}
	// Writers keep PUTting; 503s are legal once the node is gone.
	go func() {
		r := rand.New(rand.NewSource(999))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := make([]byte, 1+r.Intn(4*elem))
			r.Read(p)
			req := httptest.NewRequest(http.MethodPut, fmt.Sprintf("/objects/live-%04d", i), bytes.NewReader(p))
			rec := httptest.NewRecorder()
			tc.gw.ServeHTTP(rec, req)
			if rec.Code != http.StatusCreated && rec.Code != http.StatusServiceUnavailable {
				errc <- fmt.Errorf("PUT live-%04d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	tc.servers[2].Close() // SIGKILL-equivalent: connections refused from here on
	time.Sleep(200 * time.Millisecond)
	close(stop)

	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// After the dust settles the survivors must still serve every preloaded
	// object byte-identically.
	for name, p := range payloads {
		got, code := tc.get(t, name, "")
		if code != http.StatusOK {
			t.Fatalf("final GET %s: status %d: %s", name, code, got)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("final GET %s: wrong bytes", name)
		}
	}
}

// TestGatewayReadyzLifecycle covers the probe→formed→draining arc.
func TestGatewayReadyzLifecycle(t *testing.T) {
	scheme := core.MustScheme(rs.Must(4, 2), layout.FormECFRM)
	tc := newTestCluster(t, scheme, 512, 2, 3, store.ReadOptions{})
	defer tc.teardown()

	deadline := time.Now().Add(5 * time.Second)
	for {
		req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
		rec := httptest.NewRecorder()
		tc.gw.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never became ready: %d %s", rec.Code, rec.Body.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := tc.gw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	tc.gw.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after close = %d, want 503", rec.Code)
	}
	// healthz stays alive while draining.
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	tc.gw.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after close = %d, want 200", rec.Code)
	}
}
