package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/nodeapi"
	"repro/internal/obs"
	"repro/internal/store"
)

// nodeClient is the gateway's connection to one data node: a pooled HTTP
// client plus the live load signals (in-flight requests, latency EWMA) the
// degraded planner and the health prober consume. It replaces the role the
// per-device submission queues play in a local store — the queueing now
// happens in the transport's connection pool, and the signals are observed
// per node because that is where network contention lives.
type nodeClient struct {
	id   int
	base string // http://host:port, no trailing slash
	hc   *http.Client

	// inflight counts requests currently on the wire; ewmaNanos is an
	// exponentially weighted moving average (α = 1/8) of request latency.
	inflight  atomic.Int64
	ewmaNanos atomic.Int64
	// up reflects the latest health probe (true until proven otherwise, so
	// a cluster serves before its first sweep completes).
	up atomic.Bool
	// seen flips once the node has answered any probe — readiness gating.
	seen atomic.Bool

	readBytes  *obs.Counter // cell payload bytes fetched from this node
	writeBytes *obs.Counter // cell payload bytes shipped to this node
	errs       *obs.Counter
	upGauge    *obs.Gauge
}

// ewmaAlphaShift: newEWMA = old + (sample-old)/8.
const ewmaAlphaShift = 3

func newNodeClient(id int, base string, timeout time.Duration, reg *obs.Registry) *nodeClient {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	tr := &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     60 * time.Second,
	}
	nc := &nodeClient{
		id:   id,
		base: base,
		hc:   &http.Client{Transport: tr, Timeout: timeout},
	}
	nc.up.Store(true)
	if reg != nil {
		l := obs.L("node", fmt.Sprint(id))
		nc.readBytes = reg.Counter("ecfrm_gateway_node_read_bytes_total",
			"Cell payload bytes fetched per node.", l)
		nc.writeBytes = reg.Counter("ecfrm_gateway_node_write_bytes_total",
			"Cell payload bytes shipped per node.", l)
		nc.errs = reg.Counter("ecfrm_gateway_node_errors_total",
			"Failed node requests per node.", l)
		nc.upGauge = reg.Gauge("ecfrm_gateway_node_up",
			"1 while the node answers health probes.", l)
		nc.upGauge.Set(1)
		reg.GaugeFunc("ecfrm_gateway_node_inflight",
			"Requests currently on the wire per node.",
			func() float64 { return float64(nc.inflight.Load()) }, l)
		reg.GaugeFunc("ecfrm_gateway_node_latency_ewma_seconds",
			"EWMA of node request latency.",
			func() float64 { return time.Duration(nc.ewmaNanos.Load()).Seconds() }, l)
	}
	return nc
}

// observe folds one request's latency into the EWMA.
func (nc *nodeClient) observe(d time.Duration) {
	sample := d.Nanoseconds()
	for {
		old := nc.ewmaNanos.Load()
		next := old + (sample-old)>>ewmaAlphaShift
		if old == 0 {
			next = sample
		}
		if nc.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// do runs one request with the load accounting every call shares.
func (nc *nodeClient) do(req *http.Request) (*http.Response, error) {
	nc.inflight.Add(1)
	t0 := time.Now()
	resp, err := nc.hc.Do(req)
	nc.inflight.Add(-1)
	nc.observe(time.Since(t0))
	if err != nil {
		nc.errs.Inc()
	}
	return resp, err
}

// drainClose discards and closes a response body so the connection returns
// to the pool.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// errBody builds an error out of a non-2xx response.
func errBody(nc *nodeClient, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	nc.errs.Inc()
	return fmt.Errorf("node %s: %s: %s", nc.base, resp.Status, bytes.TrimSpace(b))
}

// healthz probes the node's liveness endpoint with a short deadline.
func (nc *nodeClient) healthz(timeout time.Duration) bool {
	req, err := http.NewRequest(http.MethodGet, nc.base+"/healthz", nil)
	if err != nil {
		return false
	}
	ctx, cancel := contextWithTimeout(timeout)
	defer cancel()
	resp, err := nc.hc.Do(req.WithContext(ctx))
	if err != nil {
		return false
	}
	drainClose(resp)
	return resp.StatusCode == http.StatusOK
}

// remoteCell is one (group, disk) extent on one node, as a store.CellBackend.
// The whole single-process store machinery — fan-out runs, hedged reads,
// degraded replanning, the two-phase commit barrier — drives the cluster
// through this type.
type remoteCell struct {
	nc    *nodeClient
	group int
	disk  int
	elem  int
}

func (rc *remoteCell) url(path string) string { return rc.nc.base + path }

func (rc *remoteCell) ReadRun(slot, count int) ([]byte, []uint32, error) {
	u := fmt.Sprintf("%s?slot=%d&count=%d", rc.url(nodeapi.CellsPath(rc.group, rc.disk)), slot, count)
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := rc.nc.do(req)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode == http.StatusNotFound && resp.Header.Get(nodeapi.MissingHeader) != "" {
		drainClose(resp)
		return nil, nil, fmt.Errorf("%w: node %s group %d disk %d slot %d",
			store.ErrCellMissing, rc.nc.base, rc.group, rc.disk, slot)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, errBody(rc.nc, resp)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		rc.nc.errs.Inc()
		return nil, nil, err
	}
	data, crcs, err := nodeapi.DecodeRun(body, rc.elem)
	if err != nil {
		rc.nc.errs.Inc()
		return nil, nil, err
	}
	rc.nc.readBytes.Add(int64(len(data)))
	return data, crcs, nil
}

func (rc *remoteCell) WriteRun(slot int, data []byte, crcs []uint32) error {
	u := fmt.Sprintf("%s?slot=%d", rc.url(nodeapi.CellsPath(rc.group, rc.disk)), slot)
	frame := nodeapi.EncodeRun(rc.elem, data, crcs)
	req, err := http.NewRequest(http.MethodPut, u, bytes.NewReader(frame))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rc.nc.do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return errBody(rc.nc, resp)
	}
	drainClose(resp)
	rc.nc.writeBytes.Add(int64(len(data)))
	return nil
}

func (rc *remoteCell) post(path string) error {
	req, err := http.NewRequest(http.MethodPost, rc.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := rc.nc.do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return errBody(rc.nc, resp)
	}
	drainClose(resp)
	return nil
}

func (rc *remoteCell) Sync() error {
	return rc.post(nodeapi.SyncPath(rc.group, rc.disk))
}

func (rc *remoteCell) Truncate(slots int) error {
	return rc.post(fmt.Sprintf("%s?slots=%d", nodeapi.TruncatePath(rc.group, rc.disk), slots))
}

// meta fetches the extent's geometry; errors degrade to the zero value so
// status endpoints stay serviceable while a node is down.
func (rc *remoteCell) meta() nodeapi.DiskMeta {
	var m nodeapi.DiskMeta
	req, err := http.NewRequest(http.MethodGet, rc.url(nodeapi.MetaPath(rc.group, rc.disk)), nil)
	if err != nil {
		return m
	}
	resp, err := rc.nc.do(req)
	if err != nil {
		return m
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		json.NewDecoder(resp.Body).Decode(&m)
	}
	return m
}

func (rc *remoteCell) Slots() int    { return rc.meta().Slots }
func (rc *remoteCell) Elements() int { return rc.meta().Elements }

// Close is a no-op: the transport belongs to the nodeClient, which the
// gateway closes once for all extents.
func (rc *remoteCell) Close() error { return nil }
