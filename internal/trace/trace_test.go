package trace

import (
	"bytes"
	"errors"
	"sort"
	"strings"
	"testing"
)

func TestCatalogLayout(t *testing.T) {
	objs, err := Catalog(50, 1000, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 50 {
		t.Fatalf("%d objects", len(objs))
	}
	var off int64
	for i, o := range objs {
		if o.ID != i || o.Off != off || o.Size < 1000 || o.Size > 5000 {
			t.Fatalf("object %d malformed: %+v", i, o)
		}
		off += int64(o.Size)
	}
	if TotalBytes(objs) != off {
		t.Fatalf("TotalBytes = %d, want %d", TotalBytes(objs), off)
	}
	if TotalBytes(nil) != 0 {
		t.Fatal("empty catalog extent must be 0")
	}
}

func TestCatalogValidation(t *testing.T) {
	for _, p := range [][3]int{{0, 1, 2}, {5, 0, 2}, {5, 3, 2}} {
		if _, err := Catalog(p[0], p[1], p[2], 1); err == nil {
			t.Errorf("Catalog(%v) succeeded", p)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	objs, _ := Catalog(100, 1000, 1000, 2)
	events, err := Zipf(objs, 20000, 1.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 20000 {
		t.Fatalf("%d events", len(events))
	}
	pop := Popularity(events)
	counts := make([]int, 0, len(pop))
	total := 0
	for _, c := range pop {
		counts = append(counts, c)
		total += c
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	// Zipf(1.2): the top 10 objects must dominate (well over 40% of reads);
	// uniform would give them 10%.
	top10 := 0
	for _, c := range counts[:min(10, len(counts))] {
		top10 += c
	}
	if frac := float64(top10) / float64(total); frac < 0.4 {
		t.Fatalf("top-10 fraction %.2f too uniform for Zipf", frac)
	}
}

func TestZipfValidation(t *testing.T) {
	objs, _ := Catalog(5, 10, 10, 4)
	if _, err := Zipf(nil, 10, 1.2, 1); err == nil {
		t.Error("empty catalog")
	}
	if _, err := Zipf(objs, -1, 1.2, 1); err == nil {
		t.Error("negative events")
	}
	if _, err := Zipf(objs, 10, 1.0, 1); err == nil {
		t.Error("exponent ≤ 1")
	}
}

func TestUniformCoverage(t *testing.T) {
	objs, _ := Catalog(20, 10, 10, 5)
	events, err := Uniform(objs, 5000, 6)
	if err != nil {
		t.Fatal(err)
	}
	pop := Popularity(events)
	if len(pop) != 20 {
		t.Fatalf("only %d objects read", len(pop))
	}
	for id, c := range pop {
		if c < 100 || c > 500 {
			t.Fatalf("object %d count %d implausible for uniform", id, c)
		}
	}
	if _, err := Uniform(nil, 1, 1); err == nil {
		t.Error("empty catalog must fail")
	}
	if _, err := Uniform(objs, -1, 1); err == nil {
		t.Error("negative events must fail")
	}
}

func TestEventsMatchCatalog(t *testing.T) {
	objs, _ := Catalog(10, 100, 200, 7)
	events, _ := Zipf(objs, 500, 1.5, 8)
	for _, e := range events {
		o := objs[e.Object]
		if e.Off != o.Off || e.Size != o.Size {
			t.Fatalf("event %+v disagrees with catalog object %+v", e, o)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	objs, _ := Catalog(10, 100, 200, 9)
	events, _ := Uniform(objs, 100, 10)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("%d events back, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"badHeader": "a,b,c\n1,2,3\n",
		"badRow":    "object,off,size\nx,2,3\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	objs, _ := Catalog(30, 10, 20, 11)
	a, _ := Zipf(objs, 200, 1.3, 12)
	b, _ := Zipf(objs, 200, 1.3, 12)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
