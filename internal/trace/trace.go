// Package trace generates and serializes synthetic object-read traces for
// workloads beyond the paper's uniform protocol: Zipf-skewed object
// popularity (hot objects dominate, the common cloud access pattern) over a
// catalog of variable-size objects, with deterministic seeding and CSV
// round-tripping so traces can be replayed across runs and tools.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
)

// ErrFormat flags a malformed CSV trace.
var ErrFormat = errors.New("trace: bad format")

// Object is one entry of the catalog.
type Object struct {
	ID   int
	Off  int64 // byte offset in the store
	Size int   // bytes
}

// Event is one read in a trace: a whole-object read.
type Event struct {
	Object int // catalog index
	Off    int64
	Size   int
}

// Catalog builds a catalog of count objects with sizes uniform in
// [minSize, maxSize] bytes, laid out back to back from offset 0.
func Catalog(count, minSize, maxSize int, seed int64) ([]Object, error) {
	if count < 1 || minSize < 1 || maxSize < minSize {
		return nil, fmt.Errorf("trace: invalid catalog parameters count=%d min=%d max=%d", count, minSize, maxSize)
	}
	rng := rand.New(rand.NewSource(seed))
	objs := make([]Object, count)
	var off int64
	for i := range objs {
		size := minSize + rng.Intn(maxSize-minSize+1)
		objs[i] = Object{ID: i, Off: off, Size: size}
		off += int64(size)
	}
	return objs, nil
}

// TotalBytes returns the catalog's extent.
func TotalBytes(objs []Object) int64 {
	if len(objs) == 0 {
		return 0
	}
	last := objs[len(objs)-1]
	return last.Off + int64(last.Size)
}

// Zipf generates events reads over the catalog with Zipf(s, v=1) popularity:
// object ranks are a fixed random permutation of the catalog, so the hot set
// is stable for a given seed.
func Zipf(objs []Object, events int, s float64, seed int64) ([]Event, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("trace: empty catalog")
	}
	if events < 0 {
		return nil, fmt.Errorf("trace: negative event count")
	}
	if s <= 1 {
		return nil, fmt.Errorf("trace: zipf exponent %v must exceed 1", s)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(len(objs)-1))
	rank := rng.Perm(len(objs)) // rank → object
	out := make([]Event, events)
	for i := range out {
		o := objs[rank[int(z.Uint64())]]
		out[i] = Event{Object: o.ID, Off: o.Off, Size: o.Size}
	}
	return out, nil
}

// Uniform generates uniformly random whole-object reads.
func Uniform(objs []Object, events int, seed int64) ([]Event, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("trace: empty catalog")
	}
	if events < 0 {
		return nil, fmt.Errorf("trace: negative event count")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Event, events)
	for i := range out {
		o := objs[rng.Intn(len(objs))]
		out[i] = Event{Object: o.ID, Off: o.Off, Size: o.Size}
	}
	return out, nil
}

// WriteCSV serializes events as "object,off,size" rows with a header.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"object", "off", "size"}); err != nil {
		return err
	}
	for _, e := range events {
		rec := []string{
			strconv.Itoa(e.Object),
			strconv.FormatInt(e.Off, 10),
			strconv.Itoa(e.Size),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrFormat, err)
	}
	if len(header) != 3 || header[0] != "object" || header[1] != "off" || header[2] != "size" {
		return nil, fmt.Errorf("%w: unexpected header %v", ErrFormat, header)
	}
	var out []Event
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		obj, err1 := strconv.Atoi(rec[0])
		off, err2 := strconv.ParseInt(rec[1], 10, 64)
		size, err3 := strconv.Atoi(rec[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: bad row %v", ErrFormat, rec)
		}
		out = append(out, Event{Object: obj, Off: off, Size: size})
	}
	return out, nil
}

// Popularity returns the read count per object, for skew assertions.
func Popularity(events []Event) map[int]int {
	out := make(map[int]int)
	for _, e := range events {
		out[e.Object]++
	}
	return out
}
