package ecfrm

// Fuzz targets for the library's externally reachable surfaces. Run the seed
// corpus as ordinary tests with `go test`, or explore with
// `go test -fuzz=FuzzStoreRoundTrip -fuzztime=30s`.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/store"
)

// FuzzStoreRoundTrip drives the full write → fail → degraded-read path with
// fuzzer-chosen geometry and payload, asserting byte fidelity whenever the
// operation is within the store's documented domain.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte("hello erasure coded world"), uint8(1), uint8(3), uint16(7), uint16(11))
	f.Add([]byte{0}, uint8(0), uint8(0), uint16(0), uint16(1))
	f.Add(bytes.Repeat([]byte{0xa5}, 300), uint8(2), uint8(9), uint16(100), uint16(50))
	f.Fuzz(func(t *testing.T, payload []byte, formSel, failSel uint8, off16, len16 uint16) {
		if len(payload) == 0 || len(payload) > 1<<12 {
			return
		}
		code, err := NewLRC(6, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		form := []Form{FormStandard, FormRotated, FormECFRM}[int(formSel)%3]
		scheme, err := NewScheme(code, form)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStore(scheme, 32)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Append(payload); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		st.FailDisk(int(failSel) % scheme.N())

		off := int64(off16) % int64(len(payload))
		length := int(len16)%(len(payload)-int(off)) + 1
		res, err := st.ReadAt(off, length)
		if err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", off, length, err)
		}
		if !bytes.Equal(res.Data, payload[off:off+int64(length)]) {
			t.Fatalf("payload mismatch at [%d,+%d) form %s", off, length, form)
		}
	})
}

// FuzzLayoutInversion checks the EC-FRM geometry invariants for arbitrary
// candidate shapes: CellAt∘GroupCell = id and the Lemma 1 column property.
func FuzzLayoutInversion(f *testing.F) {
	f.Add(uint8(10), uint8(6))
	f.Add(uint8(9), uint8(6))
	f.Add(uint8(7), uint8(3))
	f.Add(uint8(16), uint8(4))
	f.Fuzz(func(t *testing.T, rawN, rawK uint8) {
		n := int(rawN)%28 + 3
		k := int(rawK)%(n-1) + 1
		lay := layout.NewECFRM(n, k)
		for g := 0; g < lay.Groups(); g++ {
			cols := make(map[int]bool, n)
			for e := 0; e < n; e++ {
				p := lay.GroupCell(g, e)
				c := lay.CellAt(p)
				if c.Group != g || c.Element != e {
					t.Fatalf("(%d,%d): inversion failed at g=%d e=%d", n, k, g, e)
				}
				if cols[p.Col] {
					t.Fatalf("(%d,%d): group %d repeats column %d", n, k, g, p.Col)
				}
				cols[p.Col] = true
			}
		}
	})
}

// FuzzPlannerNeverTouchesFailedDisks throws arbitrary requests at the
// degraded planner and asserts its safety properties.
func FuzzPlannerNeverTouchesFailedDisks(f *testing.F) {
	f.Add(uint16(0), uint8(8), uint8(0), false)
	f.Add(uint16(55), uint8(20), uint8(9), true)
	f.Fuzz(func(t *testing.T, start16 uint16, count8, fail8 uint8, balance bool) {
		code, err := NewLRC(6, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		scheme, err := NewScheme(code, FormECFRM)
		if err != nil {
			t.Fatal(err)
		}
		start := int(start16) % 200
		count := int(count8)%40 + 1
		failed := []int{int(fail8) % scheme.N()}
		policy := PolicyMinCost
		if balance {
			policy = PolicyBalance
		}
		plan, err := scheme.PlanDegradedReadPolicy(start, count, failed, policy)
		if errors.Is(err, core.ErrUnrecoverable) {
			t.Fatalf("single failure must always be plannable: %v", err)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range plan.Reads {
			if a.Disk == failed[0] {
				t.Fatalf("plan touches failed disk: %+v", a)
			}
		}
		if plan.TotalReads() < count-((count/scheme.N())+1)-1 {
			t.Fatalf("implausibly few reads: %d for %d requested", plan.TotalReads(), count)
		}
		// Loads must sum to total reads.
		sum := 0
		for _, l := range plan.Loads {
			sum += l
		}
		if sum != plan.TotalReads() {
			t.Fatalf("loads sum %d != %d reads", sum, plan.TotalReads())
		}
	})
}

// FuzzStoreWriteAt exercises the small-write path against a shadow copy.
func FuzzStoreWriteAt(f *testing.F) {
	f.Add(uint16(0), []byte("0123456789abcdef0123456789abcdef"))
	f.Add(uint16(3), bytes.Repeat([]byte{7}, 64))
	f.Fuzz(func(t *testing.T, elem16 uint16, upd []byte) {
		const elemSize = 32
		if len(upd) == 0 || len(upd)%elemSize != 0 || len(upd) > 8*elemSize {
			return
		}
		code, err := NewRS(6, 3)
		if err != nil {
			t.Fatal(err)
		}
		scheme, err := NewScheme(code, FormECFRM)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStore(scheme, elemSize)
		if err != nil {
			t.Fatal(err)
		}
		total := 3 * scheme.DataPerStripe() * elemSize
		shadow := make([]byte, total)
		for i := range shadow {
			shadow[i] = byte(i * 31)
		}
		if err := st.Append(shadow); err != nil {
			t.Fatal(err)
		}
		maxStart := total/elemSize - len(upd)/elemSize
		off := int64(int(elem16)%(maxStart+1)) * elemSize
		if err := st.WriteAt(off, upd); err != nil {
			if errors.Is(err, store.ErrRange) {
				return
			}
			t.Fatal(err)
		}
		copy(shadow[off:], upd)
		res, err := st.ReadAt(0, total)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Data, shadow) {
			t.Fatal("store diverged from shadow after WriteAt")
		}
		if bad, err := st.Scrub(); err != nil || bad != nil {
			t.Fatalf("scrub after WriteAt: %v %v", bad, err)
		}
	})
}
