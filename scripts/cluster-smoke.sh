#!/bin/sh
# cluster-smoke: end-to-end check of the networked cluster — three file-backed
# data-node processes behind a gateway process, all real HTTP on localhost.
#
# Builds ecfrmd, starts 3 nodes (-mode=node, file backend) and a gateway
# (-mode=gateway) over them, gates on /healthz//readyz instead of sleeping,
# then asserts:
#
#   1. a concurrent PUT burst lands and every object GETs back byte-identical,
#   2. hedged GETs under an injected slow-device fault plan fire the hedge
#      counters (ecfrm_store_hedge_total{...outcome="fired"}),
#   3. SIGKILLing one node mid-traffic loses ZERO reads: every in-flight and
#      subsequent GET keeps returning byte-identical payloads, reconstructed
#      degraded over the surviving nodes,
#   4. /metrics shows the failure handling: replans, degraded-mode reads, and
#      the dead node's up-gauge at 0 — and /readyz stays 200 (a degraded
#      cluster is serving, not down),
#   5. the gateway and surviving nodes drain gracefully on SIGTERM.
#
# Exits nonzero (and dumps the process logs) on any miss.
set -eu

GW_PORT="${CLUSTER_SMOKE_PORT:-18710}"
N1_PORT=$((GW_PORT + 1))
N2_PORT=$((GW_PORT + 2))
N3_PORT=$((GW_PORT + 3))
OBJECTS="${CLUSTER_SMOKE_OBJECTS:-24}"
TMP="$(mktemp -d /tmp/ecfrm-cluster-smoke-XXXXXX)"
BIN="$TMP/ecfrmd"
PIDS=""

cleanup() {
    status=$?
    for pid in $PIDS; do
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    if [ "$status" -ne 0 ]; then
        for log in "$TMP"/*.log; do
            [ -f "$log" ] || continue
            echo "cluster-smoke: FAILED — $log:" >&2
            cat "$log" >&2
        done
    fi
    rm -rf "$TMP"
    exit "$status"
}
trap cleanup EXIT INT TERM

gw() { # gw <url-path> [curl args...] — prints the body
    path="$1"
    shift
    curl -fsS "$@" "http://127.0.0.1:$GW_PORT$path"
}

wait_200() { # wait_200 <port> <path> <what>
    i=0
    until curl -fsS -o /dev/null "http://127.0.0.1:$1$2" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "cluster-smoke: $3 never became ready" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "cluster-smoke: building ecfrmd"
go build -o "$BIN" ./cmd/ecfrmd

echo "cluster-smoke: starting 3 file-backed nodes on :$N1_PORT-:$N3_PORT"
for n in 1 2 3; do
    port=$((GW_PORT + n))
    mkdir -p "$TMP/node$n"
    "$BIN" -mode=node -addr "127.0.0.1:$port" -elem 4096 \
        -backend=file -data-dir "$TMP/node$n" >"$TMP/node$n.log" 2>&1 &
    eval "NODE${n}_PID=$!"
    PIDS="$PIDS $!"
done
wait_200 "$N1_PORT" /healthz "node 1"
wait_200 "$N2_PORT" /healthz "node 2"
wait_200 "$N3_PORT" /healthz "node 3"

# RS(6,3) over 3 nodes: each node serves 3 of a group's 9 disks, exactly the
# scheme's tolerance, so losing one whole node must stay readable.
echo "cluster-smoke: starting gateway on :$GW_PORT"
"$BIN" -mode=gateway -addr "127.0.0.1:$GW_PORT" -elem 4096 \
    -code rs -k 6 -m 3 -form ecfrm -groups 4 \
    -nodes "http://127.0.0.1:$N1_PORT,http://127.0.0.1:$N2_PORT,http://127.0.0.1:$N3_PORT" \
    -hedge -hedge-quantile 0.5 -probe-interval 200ms -wal-flush-interval 5ms \
    >"$TMP/gateway.log" 2>&1 &
GW_PID=$!
PIDS="$PIDS $GW_PID"
# The gateway's /readyz gates on cluster formation (every node probed up).
wait_200 "$GW_PORT" /readyz "gateway"

# --- 1. concurrent PUT burst, then byte-identical GETs -----------------------
echo "cluster-smoke: concurrent PUT burst of $OBJECTS objects"
i=0
while [ "$i" -lt "$OBJECTS" ]; do
    head -c $((7000 + i * 1931)) /dev/urandom >"$TMP/obj-$i.bin"
    gw "/objects/obj-$i" -X PUT --data-binary @"$TMP/obj-$i.bin" -o /dev/null &
    PUT_PIDS="${PUT_PIDS:-} $!"
    i=$((i + 1))
done
for pid in $PUT_PIDS; do
    wait "$pid" || { echo "cluster-smoke: a PUT failed" >&2; exit 1; }
done

verify_all() { # verify_all <query> <stage>
    i=0
    while [ "$i" -lt "$OBJECTS" ]; do
        gw "/objects/obj-$i$1" -o "$TMP/out.bin"
        cmp -s "$TMP/obj-$i.bin" "$TMP/out.bin" || {
            echo "cluster-smoke: $2: GET obj-$i returned wrong bytes" >&2
            exit 1
        }
        i=$((i + 1))
    done
}
verify_all "" "healthy"

# --- 2. hedge activity under an injected slow device -------------------------
cat >"$TMP/plan.json" <<'EOF'
{"seed": 5, "policies": [{"device": 0, "latency": 8000000, "jitter": 4000000}]}
EOF
gw /faults -X PUT --data-binary @"$TMP/plan.json" -o /dev/null
verify_all "?hedge=1" "hedge warmup" # populates the hedge latency rings
verify_all "?hedge=1" "hedged"
gw /metrics >"$TMP/hedge.prom"
grep -Eq 'ecfrm_store_hedge_total\{[^}]*outcome="fired"\} [1-9]' "$TMP/hedge.prom" || {
    echo "cluster-smoke: hedges never fired under the slow-device plan" >&2
    exit 1
}
gw /faults -X DELETE -o /dev/null

# --- 3. SIGKILL one node mid-traffic: zero failed reads ----------------------
echo "cluster-smoke: SIGKILL node 3 under live GET traffic"
: >"$TMP/readerr"
(
    round=0
    while [ "$round" -lt 6 ]; do
        i=0
        while [ "$i" -lt "$OBJECTS" ]; do
            q=""
            [ $((i % 3)) -eq 1 ] && q="?hedge=1"
            if ! curl -fsS -o "$TMP/bg-out.bin" "http://127.0.0.1:$GW_PORT/objects/obj-$i$q"; then
                echo "GET obj-$i$q failed (round $round)" >>"$TMP/readerr"
            elif ! cmp -s "$TMP/obj-$i.bin" "$TMP/bg-out.bin"; then
                echo "GET obj-$i$q wrong bytes (round $round)" >>"$TMP/readerr"
            fi
            i=$((i + 1))
        done
        round=$((round + 1))
    done
) &
READER_PID=$!
sleep 0.3
kill -9 "$NODE3_PID"
wait "$NODE3_PID" 2>/dev/null || true
wait "$READER_PID"
if [ -s "$TMP/readerr" ]; then
    echo "cluster-smoke: reads failed across the node kill:" >&2
    cat "$TMP/readerr" >&2
    exit 1
fi
# The survivors keep serving every object byte-identically, degraded.
verify_all "" "node 3 down"

# --- 4. the failure is visible on /metrics, and the cluster stays ready ------
SCRAPE="$TMP/metrics.prom"
gw /metrics >"$SCRAPE"
want() {
    if ! grep -Eq "$1" "$SCRAPE"; then
        echo "cluster-smoke: /metrics missing: $1" >&2
        exit 1
    fi
}
want 'ecfrm_store_read_replans_total\{[^}]*\} [1-9]'
want 'ecfrm_store_reads_total\{[^}]*mode="degraded"\} [1-9]'
want 'ecfrm_gateway_node_up\{[^}]*node="2"\} 0'
gw /readyz -o /dev/null || {
    echo "cluster-smoke: gateway not ready while serving degraded" >&2
    exit 1
}

# --- 5. graceful drain -------------------------------------------------------
kill -TERM "$GW_PID"
wait "$GW_PID"
grep -q "drained" "$TMP/gateway.log" || {
    echo "cluster-smoke: gateway did not report graceful drain" >&2
    exit 1
}
for n in 1 2; do
    eval "pid=\$NODE${n}_PID"
    kill -TERM "$pid"
    wait "$pid"
    grep -q "drained" "$TMP/node$n.log" || {
        echo "cluster-smoke: node $n did not report graceful drain" >&2
        exit 1
    }
done
PIDS=""

echo "cluster-smoke: OK"
