#!/bin/sh
# repair-smoke: end-to-end self-healing check against a live ecfrmd.
#
# Builds the daemon, starts it with -backend=file and -repair on a throwaway
# data directory, PUTs a batch of objects, then zeroes one device's data file
# on disk (truncate -s 0) — the live fd sees short reads, every GET that
# touches the device counts a hard error, and nothing but the repair
# scheduler's error-burst detector may notice. Asserts that:
#
#   1. /repair/ serves the scheduler status JSON (rate, scrub cursor),
#   2. the detector fail-stops the gutted disk and the scheduler rebuilds
#      it without operator action (ecfrm_repair_mttr_seconds_count >= 1 on
#      /metrics, ecfrm_repair_bytes_total > 0),
#   3. every object reads back byte-identical after the rebuild, bypassing
#      the object cache,
#   4. /admin/scrub comes back clean and the background scrub has both
#      walked stripes (ecfrm_scrub_stripes_total > 0) and persisted its
#      cursor next to the device files,
#   5. POST /repair/rate retunes the limiter (visible in the status JSON).
#
# Exits nonzero (and dumps the daemon log) on any miss.
set -eu

PORT="${REPAIR_SMOKE_PORT:-18623}"
PUTS="${REPAIR_SMOKE_PUTS:-12}"
VICTIM="${REPAIR_SMOKE_VICTIM:-3}"
TMP="$(mktemp -d /tmp/ecfrm-repair-smoke-XXXXXX)"
BIN="$TMP/ecfrmd"
DATA="$TMP/data"
LOG="$TMP/ecfrmd.log"
PID=""

cleanup() {
    status=$?
    if [ -n "$PID" ]; then
        kill -9 "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ] && [ -f "$LOG" ]; then
        echo "repair-smoke: FAILED — $LOG:" >&2
        cat "$LOG" >&2
    fi
    rm -rf "$TMP"
    exit "$status"
}
trap cleanup EXIT INT TERM

fetch() { # fetch <url-path> [curl args...] — prints the body
    path="$1"
    shift
    curl -fsS "$@" "http://127.0.0.1:$PORT$path"
}

metric() { # metric <name> — prints the sample value, 0 if absent
    fetch /metrics | awk -v m="$1" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}

wait_up() {
    i=0
    until curl -fsS -o /dev/null "http://127.0.0.1:$PORT/readyz" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "repair-smoke: daemon never came up" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "repair-smoke: building ecfrmd"
go build -o "$BIN" ./cmd/ecfrmd

echo "repair-smoke: starting on :$PORT (-backend=file -repair, $DATA)"
"$BIN" -addr "127.0.0.1:$PORT" -elem 4096 -backend file -data-dir "$DATA" \
    -wal-flush-interval 3ms -repair -repair-rate 32 -scrub-interval 100ms \
    >"$LOG" 2>&1 &
PID=$!
wait_up

# 1. Scheduler status is mounted and announces the configured rate.
STATUS="$(fetch /repair/)"
echo "$STATUS" | grep -q '"rate_bytes_per_sec"' || {
    echo "repair-smoke: /repair/ status missing rate_bytes_per_sec: $STATUS" >&2
    exit 1
}

echo "repair-smoke: $PUTS PUTs"
i=0
while [ "$i" -lt "$PUTS" ]; do
    # Deterministic per-object junk, ~3000 bytes each.
    awk -v n="$i" 'BEGIN { srand(n + 7); for (j = 0; j < 3000; j++) printf "%c", 33 + int(rand() * 90) }' \
        >"$TMP/obj.$i"
    curl -fsS -o /dev/null -X PUT --data-binary "@$TMP/obj.$i" \
        "http://127.0.0.1:$PORT/objects/obj-$i"
    i=$((i + 1))
done

# Gut one device under the live daemon: the open fd survives, reads come
# back short, and each degraded GET charges the device a hard error.
VICTIM_FILE="$(printf '%s/dev_%02d.data' "$DATA" "$VICTIM")"
echo "repair-smoke: truncating $VICTIM_FILE under the live daemon"
truncate -s 0 "$VICTIM_FILE"

# Drive reads until the error-burst detector trips and the rebuild lands.
# Every GET bypasses the object cache so it really hits the devices.
echo "repair-smoke: degraded GETs until auto-rebuild completes"
i=0
until [ "$(metric ecfrm_repair_mttr_seconds_count | cut -d. -f1)" -ge 1 ] 2>/dev/null; do
    j=0
    while [ "$j" -lt "$PUTS" ]; do
        curl -fsS -o /dev/null "http://127.0.0.1:$PORT/objects/obj-$j?nocache=1" || {
            echo "repair-smoke: degraded GET obj-$j failed" >&2
            exit 1
        }
        j=$((j + 1))
    done
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "repair-smoke: no rebuild after $i GET rounds" >&2
        exit 1
    fi
    sleep 0.1
done
echo "repair-smoke: rebuild completed after $i degraded GET rounds"

BYTES="$(metric 'ecfrm_repair_bytes_total{kind="rebuild"}')"
case "$BYTES" in
    0 | 0.*) echo "repair-smoke: ecfrm_repair_bytes_total{kind=\"rebuild\"} = $BYTES, want > 0" >&2; exit 1 ;;
esac

# 3. Every object byte-identical through the rebuilt disk.
echo "repair-smoke: verifying $PUTS objects byte-identical"
i=0
while [ "$i" -lt "$PUTS" ]; do
    fetch "/objects/obj-$i?nocache=1" >"$TMP/got.$i"
    cmp -s "$TMP/obj.$i" "$TMP/got.$i" || {
        echo "repair-smoke: obj-$i differs after rebuild" >&2
        exit 1
    }
    i=$((i + 1))
done

# 4. Scrub: admin sweep clean, background scrub walking, cursor persisted.
SCRUB="$(fetch /admin/scrub -X POST)"
case "$SCRUB" in
*'"corrupt_stripes":[]'* | *'"corrupt_stripes":null'*) ;;
*)
    echo "repair-smoke: post-rebuild scrub not clean: $SCRUB" >&2
    exit 1
    ;;
esac
i=0
until [ "$(metric ecfrm_scrub_stripes_total | cut -d. -f1)" -gt 0 ] 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "repair-smoke: background scrub never walked a stripe" >&2
        exit 1
    fi
    sleep 0.1
done
[ -f "$DATA/scrub.cursor" ] || {
    echo "repair-smoke: scrub cursor not persisted at $DATA/scrub.cursor" >&2
    exit 1
}

# 5. The rate limiter retunes over HTTP.
curl -fsS -o /dev/null -X POST "http://127.0.0.1:$PORT/repair/rate?bytes=8388608"
fetch /repair/ | grep -q '"rate_bytes_per_sec": 8388608' || {
    echo "repair-smoke: rate change not reflected in status" >&2
    exit 1
}

kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""
grep -q "drained, bye" "$LOG" || {
    echo "repair-smoke: daemon did not drain cleanly" >&2
    exit 1
}

echo "repair-smoke: OK (auto fail-stop, rebuild, scrub, rate retune)"
