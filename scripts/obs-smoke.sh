#!/bin/sh
# obs-smoke: end-to-end check that a real ecfrmd serves working metrics.
#
# Builds the daemon, starts it with -obs on a local port, pushes one object
# through PUT/GET/HEAD, and asserts the /metrics scrape contains the series
# the dashboards depend on: per-disk element read counters, the per-request
# max-disk-load histogram, cache hit/miss counters, and request latency.
# Exits nonzero (and dumps the daemon log) on any miss.
set -eu

PORT="${OBS_SMOKE_PORT:-18612}"
TMP="$(mktemp -d /tmp/ecfrm-obs-smoke-XXXXXX)"
BIN="$TMP/ecfrmd"
LOG="$TMP/ecfrmd.log"
PID=""

cleanup() {
    status=$?
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ] && [ -f "$LOG" ]; then
        echo "obs-smoke: FAILED — daemon log:" >&2
        cat "$LOG" >&2
    fi
    rm -rf "$TMP"
    exit "$status"
}
trap cleanup EXIT INT TERM

fetch() { # fetch <url-path> [curl args...] — prints the body
    path="$1"
    shift
    curl -fsS "$@" "http://127.0.0.1:$PORT$path"
}

echo "obs-smoke: building ecfrmd"
go build -o "$BIN" ./cmd/ecfrmd

echo "obs-smoke: starting on :$PORT"
"$BIN" -addr "127.0.0.1:$PORT" -obs -obs-interval 1s >"$LOG" 2>&1 &
PID=$!

# Wait for readiness (up to ~5s): /readyz answers 200 only once the daemon
# can actually serve, and 503 again while draining.
i=0
until curl -fsS -o /dev/null "http://127.0.0.1:$PORT/readyz" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: daemon never came up" >&2
        exit 1
    fi
    sleep 0.1
done

# Liveness and readiness answer separately.
fetch /healthz -o /dev/null
fetch /readyz -o /dev/null

# Push one object through the full path: PUT, cold GET, warm GET, HEAD.
head -c 200000 /dev/urandom >"$TMP/payload.bin"
fetch /objects/smoke -X PUT --data-binary @"$TMP/payload.bin" -o /dev/null
fetch /objects/smoke -o "$TMP/out.bin"
cmp -s "$TMP/payload.bin" "$TMP/out.bin" || {
    echo "obs-smoke: GET body does not match PUT payload" >&2
    exit 1
}
fetch /objects/smoke -o "$TMP/out2.bin" # cache hit
fetch /objects/smoke -I -o /dev/null    # HEAD: plan-only metadata

SCRAPE="$TMP/metrics.prom"
fetch /metrics >"$SCRAPE"

want() {
    if ! grep -q "$1" "$SCRAPE"; then
        echo "obs-smoke: /metrics missing: $1" >&2
        echo "--- scrape ---" >&2
        cat "$SCRAPE" >&2
        exit 1
    fi
}
want '^ecfrm_disk_element_reads_total{disk="0"} [1-9]'
want '^ecfrm_disk_element_writes_total{disk="0"} [1-9]'
want '^ecfrm_store_reads_total{mode="normal"} [1-9]'
want '^ecfrm_store_read_max_disk_load_bucket{mode="normal",le="+Inf"} [1-9]'
want '^ecfrm_httpd_cache_misses_total [1-9]'
want '^ecfrm_httpd_cache_hits_total [1-9]'
want '^ecfrm_httpd_request_seconds_count{op="get"} [1-9]'
want '^ecfrm_httpd_request_seconds_count{op="put"} [1-9]'
want '^ecfrm_httpd_request_seconds_count{op="head"} [1-9]'
want '^ecfrm_httpd_cached_bytes 200000$'

# -obs also mounts pprof.
fetch /debug/pprof/cmdline -o /dev/null

# Graceful drain on SIGTERM.
kill -TERM "$PID"
wait "$PID"
PID=""
grep -q "drained" "$LOG" || {
    echo "obs-smoke: daemon did not report graceful drain" >&2
    exit 1
}

echo "obs-smoke: OK"
