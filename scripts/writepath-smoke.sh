#!/bin/sh
# writepath-smoke: end-to-end check of the group-commit write path against a
# live ecfrmd under a jittered fault plan.
#
# Builds the daemon, starts it with a jittered per-device write latency plan,
# fires a burst of concurrent small PUTs, and asserts that:
#
#   1. every PUT acks 201 and every object GETs back byte-identical,
#   2. the objects packed: /admin/status reports fewer sealed stripes than
#      stored objects (the old path sealed one stripe per object),
#   3. a duplicate PUT still gets 409 (append-only contract),
#   4. the WAL metric families moved (commits, batch sizes, put latency),
#   5. /admin/scrub finds every stripe parity-consistent,
#   6. the daemon drains gracefully on SIGTERM.
#
# Exits nonzero (and dumps the daemon log) on any miss.
set -eu

PORT="${WRITEPATH_SMOKE_PORT:-18617}"
PUTS="${WRITEPATH_SMOKE_PUTS:-40}"
TMP="$(mktemp -d /tmp/ecfrm-writepath-smoke-XXXXXX)"
BIN="$TMP/ecfrmd"
LOG="$TMP/ecfrmd.log"
PID=""

cleanup() {
    status=$?
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ] && [ -f "$LOG" ]; then
        echo "writepath-smoke: FAILED — daemon log:" >&2
        cat "$LOG" >&2
    fi
    rm -rf "$TMP"
    exit "$status"
}
trap cleanup EXIT INT TERM

fetch() { # fetch <url-path> [curl args...] — prints the body
    path="$1"
    shift
    curl -fsS "$@" "http://127.0.0.1:$PORT$path"
}

echo "writepath-smoke: building ecfrmd"
go build -o "$BIN" ./cmd/ecfrmd

# Every device pays 300us plus up to 200us of jitter per operation — enough
# that per-object stripe seals would crawl, while group commits amortize the
# cost across the batch. Small elements keep objects sub-stripe.
cat >"$TMP/plan.json" <<'EOF'
{"seed": 7, "policies": [
  {"device": 0, "latency": 300000, "jitter": 200000},
  {"device": 1, "latency": 300000, "jitter": 200000},
  {"device": 2, "latency": 300000, "jitter": 200000},
  {"device": 3, "latency": 300000, "jitter": 200000},
  {"device": 4, "latency": 300000, "jitter": 200000},
  {"device": 5, "latency": 300000, "jitter": 200000},
  {"device": 6, "latency": 300000, "jitter": 200000},
  {"device": 7, "latency": 300000, "jitter": 200000},
  {"device": 8, "latency": 300000, "jitter": 200000},
  {"device": 9, "latency": 300000, "jitter": 200000}
]}
EOF

echo "writepath-smoke: starting on :$PORT (group-commit WAL, jittered devices)"
"$BIN" -addr "127.0.0.1:$PORT" -elem 4096 -wal-flush-interval 3ms \
    -faults "$TMP/plan.json" >"$LOG" 2>&1 &
PID=$!

# Wait for readiness (up to ~5s): /readyz answers 200 only once the daemon
# can actually serve, and 503 again while draining.
i=0
until curl -fsS -o /dev/null "http://127.0.0.1:$PORT/readyz" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "writepath-smoke: daemon never came up" >&2
        exit 1
    fi
    sleep 0.1
done

# Concurrent burst of small PUTs: each object is 2000 bytes of deterministic
# junk (object index repeated), so GET verification needs no state.
echo "writepath-smoke: $PUTS concurrent small PUTs"
i=0
PUT_PIDS=""
while [ "$i" -lt "$PUTS" ]; do
    (
        printf "obj-%05d-" "$i" | awk '{ for (c = 0; c < 125; c++) printf "%s", $0 }' >"$TMP/in.$i"
        curl -fsS -X PUT --data-binary @"$TMP/in.$i" -o /dev/null \
            "http://127.0.0.1:$PORT/objects/o$i" || touch "$TMP/fail.$i"
    ) &
    PUT_PIDS="$PUT_PIDS $!"
    i=$((i + 1))
done
for p in $PUT_PIDS; do
    wait "$p" || true
done
for f in "$TMP"/fail.*; do
    if [ -e "$f" ]; then
        echo "writepath-smoke: a PUT failed: $f" >&2
        exit 1
    fi
done

# Every object reads back byte-identical.
i=0
while [ "$i" -lt "$PUTS" ]; do
    fetch "/objects/o$i" -o "$TMP/out.$i"
    cmp -s "$TMP/in.$i" "$TMP/out.$i" || {
        echo "writepath-smoke: GET o$i does not match its PUT payload" >&2
        exit 1
    }
    i=$((i + 1))
done

# Packing: fewer sealed stripes than objects.
STATUS="$TMP/status.json"
fetch /admin/status >"$STATUS"
STRIPES=$(sed -n 's/.*"stripes":\([0-9]*\).*/\1/p' "$STATUS")
OBJECTS=$(sed -n 's/.*"objects":\([0-9]*\).*/\1/p' "$STATUS")
echo "writepath-smoke: $OBJECTS objects packed into $STRIPES stripes"
if [ -z "$STRIPES" ] || [ -z "$OBJECTS" ] || [ "$STRIPES" -ge "$OBJECTS" ]; then
    echo "writepath-smoke: objects did not pack (stripes=$STRIPES objects=$OBJECTS)" >&2
    cat "$STATUS" >&2
    exit 1
fi

# Append-only contract survives the new path: duplicate PUT is 409.
CODE=$(curl -sS -o /dev/null -w '%{http_code}' -X PUT --data-binary @"$TMP/in.0" \
    "http://127.0.0.1:$PORT/objects/o0")
if [ "$CODE" != "409" ]; then
    echo "writepath-smoke: duplicate PUT returned $CODE, want 409" >&2
    exit 1
fi

# WAL metric families moved.
SCRAPE="$TMP/metrics.prom"
fetch /metrics >"$SCRAPE"
want() {
    if ! grep -q "$1" "$SCRAPE"; then
        echo "writepath-smoke: /metrics missing: $1" >&2
        echo "--- scrape ---" >&2
        cat "$SCRAPE" >&2
        exit 1
    fi
}
want '^ecfrm_wal_commits_total{outcome="ok"} [1-9]'
want '^ecfrm_wal_batch_objects_count [1-9]'
want '^ecfrm_wal_put_seconds_count [1-9]'
want '^ecfrm_wal_queued_objects 0'

# Parity is consistent after the concurrent burst under jittered faults.
SCRUB=$(fetch /admin/scrub -X POST)
case "$SCRUB" in
*'"corrupt_stripes":[]'* | *'"corrupt_stripes":null'*) ;;
*)
    echo "writepath-smoke: scrub found corruption: $SCRUB" >&2
    exit 1
    ;;
esac

# Graceful drain on SIGTERM.
kill -TERM "$PID"
wait "$PID"
PID=""
grep -q "drained" "$LOG" || {
    echo "writepath-smoke: daemon did not report graceful drain" >&2
    exit 1
}

echo "writepath-smoke: OK"
