#!/bin/sh
# disk-smoke: end-to-end crash-consistency check of the file-backed device
# layer against a live ecfrmd.
#
# Builds the daemon, starts it with -backend=file on a throwaway data
# directory, fires a burst of concurrent small PUTs, verifies every object
# reads back byte-identical, then SIGKILLs the daemon mid-life (no drain, no
# manifest write) and restarts it on the same directory, asserting that:
#
#   1. startup recovery reports the sealed extent (the log line and
#      /admin/status agree on a nonzero stripe count),
#   2. /admin/scrub finds every recovered stripe parity-consistent,
#   3. the per-device submission-queue metric families are live,
#   4. the store still accepts writes after recovery (a post-restart PUT
#      acks and reads back),
#   5. the daemon drains gracefully on SIGTERM (manifest sealed for the
#      next open).
#
# Exits nonzero (and dumps the daemon logs) on any miss.
set -eu

PORT="${DISK_SMOKE_PORT:-18619}"
PUTS="${DISK_SMOKE_PUTS:-20}"
TMP="$(mktemp -d /tmp/ecfrm-disk-smoke-XXXXXX)"
BIN="$TMP/ecfrmd"
DATA="$TMP/data"
LOG1="$TMP/ecfrmd.1.log"
LOG2="$TMP/ecfrmd.2.log"
PID=""

cleanup() {
    status=$?
    if [ -n "$PID" ]; then
        kill -9 "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        for f in "$LOG1" "$LOG2"; do
            if [ -f "$f" ]; then
                echo "disk-smoke: FAILED — $f:" >&2
                cat "$f" >&2
            fi
        done
    fi
    rm -rf "$TMP"
    exit "$status"
}
trap cleanup EXIT INT TERM

fetch() { # fetch <url-path> [curl args...] — prints the body
    path="$1"
    shift
    curl -fsS "$@" "http://127.0.0.1:$PORT$path"
}

wait_up() {
    i=0
    until curl -fsS -o /dev/null "http://127.0.0.1:$PORT/readyz" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "disk-smoke: daemon never came up" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "disk-smoke: building ecfrmd"
go build -o "$BIN" ./cmd/ecfrmd

echo "disk-smoke: starting on :$PORT (-backend=file, $DATA)"
"$BIN" -addr "127.0.0.1:$PORT" -elem 4096 -backend file -data-dir "$DATA" \
    -wal-flush-interval 3ms >"$LOG1" 2>&1 &
PID=$!
wait_up

# Concurrent burst of small PUTs, each 2000 bytes of deterministic junk.
echo "disk-smoke: $PUTS concurrent small PUTs"
i=0
PUT_PIDS=""
while [ "$i" -lt "$PUTS" ]; do
    (
        printf "obj-%05d-" "$i" | awk '{ for (c = 0; c < 125; c++) printf "%s", $0 }' >"$TMP/in.$i"
        curl -fsS -X PUT --data-binary @"$TMP/in.$i" -o /dev/null \
            "http://127.0.0.1:$PORT/objects/o$i" || touch "$TMP/fail.$i"
    ) &
    PUT_PIDS="$PUT_PIDS $!"
    i=$((i + 1))
done
for p in $PUT_PIDS; do
    wait "$p" || true
done
for f in "$TMP"/fail.*; do
    if [ -e "$f" ]; then
        echo "disk-smoke: a PUT failed: $f" >&2
        exit 1
    fi
done

i=0
while [ "$i" -lt "$PUTS" ]; do
    fetch "/objects/o$i" -o "$TMP/out.$i"
    cmp -s "$TMP/in.$i" "$TMP/out.$i" || {
        echo "disk-smoke: GET o$i does not match its PUT payload" >&2
        exit 1
    }
    i=$((i + 1))
done

STRIPES_BEFORE=$(fetch /admin/status | sed -n 's/.*"stripes":\([0-9]*\).*/\1/p')
if [ -z "$STRIPES_BEFORE" ] || [ "$STRIPES_BEFORE" -eq 0 ]; then
    echo "disk-smoke: no stripes sealed before crash" >&2
    exit 1
fi

# Crash: no drain, no manifest write — recovery must re-derive everything
# from the device files and the spilled WAL.
echo "disk-smoke: SIGKILL mid-life ($STRIPES_BEFORE stripes on disk)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "disk-smoke: restarting on the same data directory"
"$BIN" -addr "127.0.0.1:$PORT" -elem 4096 -backend file -data-dir "$DATA" \
    -wal-flush-interval 3ms >"$LOG2" 2>&1 &
PID=$!
wait_up

grep -q "file backend .* stripes recovered" "$LOG2" || {
    echo "disk-smoke: restart log missing the recovery report" >&2
    exit 1
}

STRIPES_AFTER=$(fetch /admin/status | sed -n 's/.*"stripes":\([0-9]*\).*/\1/p')
echo "disk-smoke: recovered $STRIPES_AFTER of $STRIPES_BEFORE stripes"
if [ -z "$STRIPES_AFTER" ] || [ "$STRIPES_AFTER" -ne "$STRIPES_BEFORE" ]; then
    # Every PUT was acked, and FsyncAlways acks only after the fsync
    # barrier — the full pre-crash extent must survive.
    echo "disk-smoke: acked stripes lost across SIGKILL" >&2
    exit 1
fi

SCRUB=$(fetch /admin/scrub -X POST)
case "$SCRUB" in
*'"corrupt_stripes":[]'* | *'"corrupt_stripes":null'*) ;;
*)
    echo "disk-smoke: scrub after crash recovery found corruption: $SCRUB" >&2
    exit 1
    ;;
esac

SCRAPE="$TMP/metrics.prom"
fetch /metrics >"$SCRAPE"
for family in ecfrm_devq_depth ecfrm_devq_io_seconds ecfrm_store_fsync_barrier_seconds; do
    grep -q "^$family" "$SCRAPE" || {
        echo "disk-smoke: /metrics missing family $family" >&2
        exit 1
    }
done

# The recovered store still accepts writes.
printf 'post-restart-object-%0900d' 7 >"$TMP/in.new"
curl -fsS -X PUT --data-binary @"$TMP/in.new" -o /dev/null \
    "http://127.0.0.1:$PORT/objects/new"
fetch /objects/new -o "$TMP/out.new"
cmp -s "$TMP/in.new" "$TMP/out.new" || {
    echo "disk-smoke: post-restart PUT does not read back" >&2
    exit 1
}

kill -TERM "$PID"
wait "$PID"
PID=""
grep -q "drained" "$LOG2" || {
    echo "disk-smoke: daemon did not report graceful drain" >&2
    exit 1
}

echo "disk-smoke: OK"
