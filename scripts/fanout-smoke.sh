#!/bin/sh
# fanout-smoke: end-to-end check of the parallel fan-out read path against a
# live ecfrmd under a jittered single-slow-disk fault plan.
#
# Builds the daemon, starts it with hedging enabled and a fault plan that
# slows device 0 by 8ms±4ms per operation, PUTs one object, then times a
# batch of uncached GETs through the sequential executor (?sequential=1)
# against the same batch through the fan-out executor. Asserts that:
#
#   1. every GET body matches the PUT payload,
#   2. the fan-out batch beats the sequential batch on both total and
#      worst-case (P99-ish) latency,
#   3. the hedge counters moved (ecfrm_store_hedge_total{outcome="fired"}),
#   4. the daemon still drains gracefully on SIGTERM.
#
# Exits nonzero (and dumps the daemon log) on any miss.
set -eu

PORT="${FANOUT_SMOKE_PORT:-18613}"
GETS="${FANOUT_SMOKE_GETS:-12}"
TMP="$(mktemp -d /tmp/ecfrm-fanout-smoke-XXXXXX)"
BIN="$TMP/ecfrmd"
LOG="$TMP/ecfrmd.log"
PID=""

cleanup() {
    status=$?
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ] && [ -f "$LOG" ]; then
        echo "fanout-smoke: FAILED — daemon log:" >&2
        cat "$LOG" >&2
    fi
    rm -rf "$TMP"
    exit "$status"
}
trap cleanup EXIT INT TERM

fetch() { # fetch <url-path> [curl args...] — prints the body
    path="$1"
    shift
    curl -fsS "$@" "http://127.0.0.1:$PORT$path"
}

echo "fanout-smoke: building ecfrmd"
go build -o "$BIN" ./cmd/ecfrmd

# Device 0 pays 8ms plus up to 4ms of jitter on every operation; everything
# else is healthy. Small elements keep the read I/O-bound on the fault plan.
cat >"$TMP/plan.json" <<'EOF'
{"seed": 5, "policies": [{"device": 0, "latency": 8000000, "jitter": 4000000}]}
EOF

echo "fanout-smoke: starting on :$PORT (hedged fan-out, slow device 0)"
"$BIN" -addr "127.0.0.1:$PORT" -elem 4096 -hedge -hedge-quantile 0.5 \
    -faults "$TMP/plan.json" >"$LOG" 2>&1 &
PID=$!

# Wait for readiness (up to ~5s): /readyz answers 200 only once the daemon
# can actually serve, and 503 again while draining.
i=0
until curl -fsS -o /dev/null "http://127.0.0.1:$PORT/readyz" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "fanout-smoke: daemon never came up" >&2
        exit 1
    fi
    sleep 0.1
done

head -c 524288 /dev/urandom >"$TMP/payload.bin"
fetch /objects/smoke -X PUT --data-binary @"$TMP/payload.bin" -o /dev/null

# timed_gets <query> <times-file>: $GETS uncached GETs, one time_total per
# line, each body verified against the payload.
timed_gets() {
    : >"$2"
    i=0
    while [ "$i" -lt "$GETS" ]; do
        curl -fsS -o "$TMP/out.bin" -w '%{time_total}\n' \
            "http://127.0.0.1:$PORT/objects/smoke?nocache=1&$1" >>"$2"
        cmp -s "$TMP/payload.bin" "$TMP/out.bin" || {
            echo "fanout-smoke: GET ($1) body does not match PUT payload" >&2
            exit 1
        }
        i=$((i + 1))
    done
}

# Warm-up fan-out reads populate the hedge latency ring (before it has
# quantile coverage the hedge delay clamps to its maximum and rarely fires).
timed_gets "" "$TMP/warm.txt"

timed_gets "sequential=1" "$TMP/seq.txt"
timed_gets "" "$TMP/fan.txt"

# Compare total and worst-case latency across the two batches.
stat() { # stat <file> -> "<sum> <max>" in microseconds
    awk '{ us = $1 * 1000000; sum += us; if (us > max) max = us }
         END { printf "%.0f %.0f\n", sum, max }' "$1"
}
SEQ=$(stat "$TMP/seq.txt")
FAN=$(stat "$TMP/fan.txt")
echo "fanout-smoke: sequential sum/max us: $SEQ"
echo "fanout-smoke: fan-out    sum/max us: $FAN"
if [ "${FAN%% *}" -ge "${SEQ%% *}" ]; then
    echo "fanout-smoke: fan-out batch total did not beat sequential" >&2
    exit 1
fi
if [ "${FAN##* }" -ge "${SEQ##* }" ]; then
    echo "fanout-smoke: fan-out worst-case GET did not beat sequential" >&2
    exit 1
fi

SCRAPE="$TMP/metrics.prom"
fetch /metrics >"$SCRAPE"
want() {
    if ! grep -q "$1" "$SCRAPE"; then
        echo "fanout-smoke: /metrics missing: $1" >&2
        echo "--- scrape ---" >&2
        cat "$SCRAPE" >&2
        exit 1
    fi
}
want '^ecfrm_store_hedge_total{outcome="fired"} [1-9]'
want '^ecfrm_store_read_run_bytes_count [1-9]'

# Graceful drain on SIGTERM.
kill -TERM "$PID"
wait "$PID"
PID=""
grep -q "drained" "$LOG" || {
    echo "fanout-smoke: daemon did not report graceful drain" >&2
    exit 1
}

echo "fanout-smoke: OK"
