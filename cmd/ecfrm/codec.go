package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/shardio"
)

func buildScheme(code string, k, l, m int, form string) (*core.Scheme, error) {
	switch strings.ToLower(code) {
	case "rs":
		rc, err := rs.New(k, m)
		if err != nil {
			return nil, err
		}
		return core.NewScheme(rc, layout.Form(form))
	case "lrc":
		lc, err := lrc.New(k, l, m)
		if err != nil {
			return nil, err
		}
		return core.NewScheme(lc, layout.Form(form))
	case "crs":
		cc, err := crs.New(k, m)
		if err != nil {
			return nil, err
		}
		return core.NewScheme(cc, layout.Form(form))
	default:
		return nil, fmt.Errorf("unknown code %q (want rs, lrc, or crs)", code)
	}
}

// schemeFromManifest rebuilds the scheme a shard directory was written with.
func schemeFromManifest(dir string) (*core.Scheme, shardio.Manifest, error) {
	man, err := shardio.ReadManifest(dir)
	if err != nil {
		return nil, man, err
	}
	scheme, err := buildScheme(man.Code, man.K, man.L, man.M, man.Form)
	return scheme, man, err
}

func flagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ExitOnError)
}

func parseInts(csv string) ([]int, error) {
	if csv == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad disk list %q: %v", csv, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdEncode(args []string) error {
	fs := flagSet("encode")
	sf := newSchemeFlags(fs)
	in := fs.String("in", "", "input file")
	out := fs.String("out", "", "output shard directory")
	elem := fs.Int("elem", 64<<10, "element size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("encode requires -in and -out")
	}
	scheme, err := sf.build()
	if err != nil {
		return err
	}
	payload, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	man, err := shardio.Encode(scheme, payload, *out, *elem, shardio.Manifest{
		Code: strings.ToLower(*sf.code), K: *sf.k, L: *sf.l, M: *sf.m, Form: *sf.form,
	})
	if err != nil {
		return err
	}
	fmt.Printf("encoded %d bytes as %s into %d stripes across %d disk files in %s\n",
		len(payload), scheme.Name(), man.Stripes, scheme.N(), *out)
	return nil
}

func cmdDecode(args []string) error {
	fs := flagSet("decode")
	in := fs.String("in", "", "input shard directory")
	out := fs.String("out", "", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decode requires -in and -out")
	}
	scheme, man, err := schemeFromManifest(*in)
	if err != nil {
		return err
	}
	payload, missing, err := shardio.Decode(scheme, *in)
	if err != nil {
		return err
	}
	if missing > 0 {
		fmt.Printf("decoded through %d missing disk file(s) (tolerance: %d)\n",
			missing, scheme.FaultTolerance())
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		return err
	}
	fmt.Printf("decoded %d bytes from %s (%s) into %s\n", man.Length, *in, scheme.Name(), *out)
	return nil
}

func cmdVerify(args []string) error {
	fs := flagSet("verify")
	in := fs.String("in", "", "shard directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("verify requires -in")
	}
	scheme, man, err := schemeFromManifest(*in)
	if err != nil {
		return err
	}
	if err := shardio.Verify(scheme, *in); err != nil {
		return err
	}
	fmt.Printf("all %d stripes verify clean (%s)\n", man.Stripes, scheme.Name())
	return nil
}
