package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/shardio"
)

func buildScheme(code string, k, l, m int, form string) (*core.Scheme, error) {
	switch strings.ToLower(code) {
	case "rs":
		rc, err := rs.New(k, m)
		if err != nil {
			return nil, err
		}
		return core.NewScheme(rc, layout.Form(form))
	case "lrc":
		lc, err := lrc.New(k, l, m)
		if err != nil {
			return nil, err
		}
		return core.NewScheme(lc, layout.Form(form))
	case "crs":
		cc, err := crs.New(k, m)
		if err != nil {
			return nil, err
		}
		return core.NewScheme(cc, layout.Form(form))
	default:
		return nil, fmt.Errorf("unknown code %q (want rs, lrc, or crs)", code)
	}
}

// schemeFromManifest rebuilds the scheme a shard directory was written with.
func schemeFromManifest(dir string) (*core.Scheme, shardio.Manifest, error) {
	man, err := shardio.ReadManifest(dir)
	if err != nil {
		return nil, man, err
	}
	scheme, err := buildScheme(man.Code, man.K, man.L, man.M, man.Form)
	return scheme, man, err
}

func flagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ExitOnError)
}

func parseInts(csv string) ([]int, error) {
	if csv == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad disk list %q: %v", csv, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parallelFlag registers the shared worker-count flag; 0 means one worker
// per CPU.
func parallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0, "pipeline workers (0 = one per CPU)")
}

func workersOf(parallel int) int {
	if parallel > 0 {
		return parallel
	}
	return runtime.GOMAXPROCS(0)
}

func cmdEncode(args []string) error {
	fs := flagSet("encode")
	sf := newSchemeFlags(fs)
	in := fs.String("in", "", "input file")
	out := fs.String("out", "", "output shard directory")
	elem := fs.Int("elem", 64<<10, "element size in bytes")
	parallel := parallelFlag(fs)
	buffered := fs.Bool("buffered", false, "buffer the whole payload in memory instead of streaming")
	fsync := fs.Bool("fsync", false, "fsync shard files, manifest, and directory after encoding")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("encode requires -in and -out")
	}
	scheme, err := sf.build()
	if err != nil {
		return err
	}
	base := shardio.Manifest{
		Code: strings.ToLower(*sf.code), K: *sf.k, L: *sf.l, M: *sf.m, Form: *sf.form,
	}
	var man shardio.Manifest
	if *buffered {
		payload, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		man, err = shardio.Encode(scheme, payload, *out, *elem, base)
		if err != nil {
			return err
		}
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		man, err = shardio.EncodeStream(scheme, f, *out, *elem, base, workersOf(*parallel))
		if err != nil {
			return err
		}
	}
	if *fsync {
		if err := shardio.Sync(scheme, *out); err != nil {
			return err
		}
	}
	fmt.Printf("encoded %d bytes as %s into %d stripes across %d disk files in %s\n",
		man.Length, scheme.Name(), man.Stripes, scheme.N(), *out)
	return nil
}

func cmdDecode(args []string) error {
	fs := flagSet("decode")
	in := fs.String("in", "", "input shard directory")
	out := fs.String("out", "", "output file")
	parallel := parallelFlag(fs)
	buffered := fs.Bool("buffered", false, "buffer the whole payload in memory instead of streaming")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decode requires -in and -out")
	}
	scheme, man, err := schemeFromManifest(*in)
	if err != nil {
		return err
	}
	var missing int
	if *buffered {
		payload, bufMissing, err := shardio.Decode(scheme, *in)
		if err != nil {
			return err
		}
		missing = bufMissing
		if err := os.WriteFile(*out, payload, 0o644); err != nil {
			return err
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		missing, err = shardio.DecodeStream(scheme, *in, f, workersOf(*parallel))
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if missing > 0 {
		fmt.Printf("decoded through %d missing disk file(s) (tolerance: %d)\n",
			missing, scheme.FaultTolerance())
	}
	fmt.Printf("decoded %d bytes from %s (%s) into %s\n", man.Length, *in, scheme.Name(), *out)
	return nil
}

func cmdVerify(args []string) error {
	fs := flagSet("verify")
	in := fs.String("in", "", "shard directory")
	parallel := parallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("verify requires -in")
	}
	scheme, man, err := schemeFromManifest(*in)
	if err != nil {
		return err
	}
	if err := shardio.VerifyStream(scheme, *in, workersOf(*parallel)); err != nil {
		return err
	}
	fmt.Printf("all %d stripes verify clean (%s)\n", man.Stripes, scheme.Name())
	return nil
}
