// Command ecfrm encodes files into per-disk shard directories with any of
// the paper's six scheme variants, decodes them back (tolerating up to the
// scheme's fault tolerance in missing disk files), and inspects layouts and
// read plans.
//
// Usage:
//
//	ecfrm encode -in data.bin -out shards/ -code lrc -k 6 -l 2 -m 2 -form ecfrm
//	ecfrm decode -in shards/ -out restored.bin        # works with lost disks
//	ecfrm info   -code rs -k 6 -m 3 -form ecfrm
//	ecfrm plan   -code lrc -k 6 -l 2 -m 2 -form ecfrm -start 0 -count 8 -failed 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = cmdEncode(os.Args[2:])
	case "decode":
		err = cmdDecode(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecfrm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ecfrm <encode|decode|verify|info|plan> [flags]
  encode -in FILE -out DIR  [-code rs|lrc -k K -l L -m M -form F -elem N -parallel W -buffered]
  decode -in DIR  -out FILE [-parallel W -buffered]
  verify -in DIR            [-parallel W]  # parity-check every stripe
  info   -code rs|lrc -k K [-l L] -m M -form F
  plan   -code rs|lrc -k K [-l L] -m M -form F -start S -count C [-failed D,D,...]

encode/decode stream stripe-at-a-time through a W-worker pipeline, so memory
stays O(W × stripe) however large the file; -buffered selects the legacy
whole-payload path.`)
}

// schemeFlags registers the shared scheme-selection flags on fs.
type schemeFlags struct {
	code *string
	k    *int
	l    *int
	m    *int
	form *string
}

func newSchemeFlags(fs *flag.FlagSet) schemeFlags {
	return schemeFlags{
		code: fs.String("code", "lrc", "candidate code: rs or lrc"),
		k:    fs.Int("k", 6, "data elements per row"),
		l:    fs.Int("l", 2, "local parity count (lrc only)"),
		m:    fs.Int("m", 2, "parity count (rs) / global parity count (lrc)"),
		form: fs.String("form", "ecfrm", "layout form: standard, rotated, or ecfrm"),
	}
}

func (sf schemeFlags) build() (*core.Scheme, error) {
	return buildScheme(*sf.code, *sf.k, *sf.l, *sf.m, *sf.form)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	sf := newSchemeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sf.build()
	if err != nil {
		return err
	}
	lay := scheme.Layout()
	fmt.Printf("scheme:            %s\n", scheme.Name())
	fmt.Printf("disks (columns):   %d\n", scheme.N())
	fmt.Printf("rows per stripe:   %d\n", lay.Rows())
	fmt.Printf("groups per stripe: %d\n", lay.Groups())
	fmt.Printf("data elems/stripe: %d\n", scheme.DataPerStripe())
	fmt.Printf("cells per stripe:  %d\n", scheme.CellsPerStripe())
	fmt.Printf("fault tolerance:   any %d concurrent disk failures\n", scheme.FaultTolerance())
	fmt.Printf("storage overhead:  %.3fx\n", scheme.StorageOverhead())
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	sf := newSchemeFlags(fs)
	start := fs.Int("start", 0, "first data element")
	count := fs.Int("count", 8, "number of data elements")
	failed := fs.String("failed", "", "comma-separated failed disks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sf.build()
	if err != nil {
		return err
	}
	failedDisks, err := parseInts(*failed)
	if err != nil {
		return err
	}
	var plan *core.Plan
	if len(failedDisks) == 0 {
		plan, err = scheme.PlanNormalRead(*start, *count)
	} else {
		plan, err = scheme.PlanDegradedRead(*start, *count, failedDisks)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: read elements [%d,%d), failed disks %v\n",
		scheme.Name(), *start, *start+*count, failedDisks)
	fmt.Printf("total element reads: %d   cost: %.3f   max disk load: %d   disks used: %d\n",
		plan.TotalReads(), plan.Cost(), plan.MaxLoad(), plan.ContributingDisks())
	fmt.Print("per-disk loads: ")
	for d, l := range plan.Loads {
		if d > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("d%d:%d", d, l)
	}
	fmt.Println()
	for _, a := range plan.Reads {
		fmt.Printf("  disk %2d  stripe %3d  cell (%d,%d)\n", a.Disk, a.Stripe, a.Pos.Row, a.Pos.Col)
	}
	return nil
}
