// Command ecfrmtrace generates object-read traces (uniform or Zipf-skewed)
// and replays them against a chosen scheme, reporting latency and load
// statistics from the simulated disk array — the workload-exploration
// companion to cmd/ecfrmbench's fixed paper protocol.
//
// Usage:
//
//	ecfrmtrace -gen -zipf 1.2 -objects 50 -events 2000 -out trace.csv
//	ecfrmtrace -replay trace.csv -code lrc -k 6 -l 2 -m 2 -form ecfrm
//	ecfrmtrace -gen -replay - -form standard        # generate and replay
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		zipf    = flag.Float64("zipf", 0, "Zipf exponent (>1); 0 = uniform popularity")
		objects = flag.Int("objects", 40, "catalog size")
		minMB   = flag.Int("min-mb", 3, "minimum object size in MB")
		maxMB   = flag.Int("max-mb", 18, "maximum object size in MB")
		events  = flag.Int("events", 1000, "trace length")
		seed    = flag.Int64("seed", 2015, "generation seed")
		out     = flag.String("out", "", "write the generated trace CSV here")
		replay  = flag.String("replay", "", `trace CSV to replay ("-" = the one just generated)`)
		codeF   = flag.String("code", "lrc", "candidate code: rs or lrc")
		k       = flag.Int("k", 6, "data elements per row")
		l       = flag.Int("l", 2, "local parities (lrc)")
		m       = flag.Int("m", 2, "parities (rs) / global parities (lrc)")
		form    = flag.String("form", "ecfrm", "layout: standard, rotated, ecfrm")
		failed  = flag.Int("fail", -1, "fail this disk during replay")
	)
	flag.Parse()

	if !*gen && *replay == "" {
		flag.Usage()
		os.Exit(2)
	}

	catalog, err := trace.Catalog(*objects, *minMB<<20, *maxMB<<20, *seed)
	if err != nil {
		log.Fatal("ecfrmtrace: ", err)
	}
	var events2 []trace.Event
	if *gen {
		if *zipf > 0 {
			events2, err = trace.Zipf(catalog, *events, *zipf, *seed+1)
		} else {
			events2, err = trace.Uniform(catalog, *events, *seed+1)
		}
		if err != nil {
			log.Fatal("ecfrmtrace: ", err)
		}
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal("ecfrmtrace: ", err)
			}
			if err := trace.WriteCSV(f, events2); err != nil {
				log.Fatal("ecfrmtrace: ", err)
			}
			f.Close()
			fmt.Printf("wrote %d events over %d objects to %s\n", len(events2), *objects, *out)
		}
	}
	if *replay == "" {
		return
	}
	if *replay != "-" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal("ecfrmtrace: ", err)
		}
		events2, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal("ecfrmtrace: ", err)
		}
	}
	if len(events2) == 0 {
		log.Fatal("ecfrmtrace: no events to replay")
	}

	var scheme *core.Scheme
	switch *codeF {
	case "rs":
		c, err := rs.New(*k, *m)
		if err != nil {
			log.Fatal("ecfrmtrace: ", err)
		}
		scheme = core.MustScheme(c, layout.Form(*form))
	case "lrc":
		c, err := lrc.New(*k, *l, *m)
		if err != nil {
			log.Fatal("ecfrmtrace: ", err)
		}
		scheme = core.MustScheme(c, layout.Form(*form))
	default:
		log.Fatalf("ecfrmtrace: unknown code %q", *codeF)
	}

	const elem = 1 << 20
	st := store.MustNew(scheme, elem)
	if err := st.Append(make([]byte, trace.TotalBytes(catalog))); err != nil {
		log.Fatal("ecfrmtrace: ", err)
	}
	if err := st.Flush(); err != nil {
		log.Fatal("ecfrmtrace: ", err)
	}
	if *failed >= 0 {
		st.FailDisk(*failed)
	}
	array, err := disksim.NewArray(scheme.N(), disksim.DefaultConfig(), *seed+2)
	if err != nil {
		log.Fatal("ecfrmtrace: ", err)
	}

	var lat, speed, maxLoad stats.Summary
	start := time.Now()
	for _, e := range events2 {
		res, err := st.ReadAt(e.Off, e.Size)
		if err != nil {
			log.Fatalf("ecfrmtrace: object %d: %v", e.Object, err)
		}
		t := array.ServeRead(res.Plan.Loads, elem)
		lat.AddDuration(t)
		speed.Add(disksim.SpeedMBps(e.Size, t))
		maxLoad.Add(float64(res.Plan.MaxLoad()))
	}
	fmt.Printf("replayed %d reads on %s in %v (wall)\n", len(events2), scheme.Name(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("simulated latency (s):  %s\n", lat.String())
	fmt.Printf("read speed (MB/s):      %s\n", speed.String())
	fmt.Printf("max disk load:          %s\n", maxLoad.String())
	fmt.Println("\nlatency distribution:")
	fmt.Print(lat.Histogram(10, "s"))
}
