package main

import (
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/gateway"
	"repro/internal/store"
)

// runGateway serves the object API over the data nodes in -nodes: one real
// store per placement group whose devices are HTTP cell clients, so fan-out,
// hedging, degraded replanning, and group-commit WAL writes all run across
// the network unchanged.
func runGateway() {
	var urls []string
	for _, u := range strings.Split(*nodesFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("ecfrmd: -mode=gateway requires -nodes (comma-separated base URLs)")
	}
	if *fsync != string(store.FsyncAlways) && *fsync != string(store.FsyncNever) {
		log.Fatalf("ecfrmd: unknown -fsync mode %q (always or never)", *fsync)
	}
	scheme := buildScheme()
	gw, err := gateway.New(gateway.Config{
		Nodes:    urls,
		Groups:   *groups,
		ElemSize: *elem,
		Scheme:   scheme,
		WAL:      store.WALConfig{BatchBytes: *walBatch, FlushInterval: *walEvery},
		Read: store.ReadOptions{
			Sequential:  !*fanout,
			Concurrency: *readConc,
			Hedge: store.HedgeConfig{
				Enabled:  *hedge,
				Quantile: *hedgeQ,
				Min:      *hedgeMin,
			},
		},
		NodeTimeout:   *nodeTimeout,
		ProbeInterval: *probeEvery,
		SyncWrites:    *fsync == string(store.FsyncAlways),
		Recover:       *gwRecover,
	})
	if err != nil {
		log.Fatal("ecfrmd: ", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("gateway: %s over %d nodes, %d groups, elem %d, tolerates %d disk failures per group, on %s",
		scheme.Name(), len(urls), *groups, *elem, scheme.FaultTolerance(), *addr)
	serveUntilSignalled(srv, nil, gw.Close)
}
