package main

import (
	"log"
	"net/http"
	"time"

	"repro/internal/datanode"
	"repro/internal/obs"
	"repro/internal/store"
)

// runNode serves one data node: per-(group,disk) cell extents behind the
// nodeapi HTTP protocol. All erasure-coding intelligence stays on the
// gateway; the node stores cells and checksums verbatim, which is exactly
// why it needs none of the scheme flags.
func runNode() {
	cfg := datanode.Config{
		ElemSize: *elem,
		Registry: obs.NewRegistry(),
	}
	switch *backend {
	case "mem":
	case "file":
		if *dataDir == "" {
			log.Fatal("ecfrmd: -mode=node -backend=file requires -data-dir")
		}
		if *fsync != string(store.FsyncAlways) && *fsync != string(store.FsyncNever) {
			log.Fatalf("ecfrmd: unknown -fsync mode %q (always or never)", *fsync)
		}
		cfg.Dir = *dataDir
		cfg.File = store.FileConfig{Fsync: store.FsyncMode(*fsync), Direct: *direct}
	default:
		log.Fatalf("ecfrmd: unknown backend %q (mem or file)", *backend)
	}
	n, err := datanode.New(cfg)
	if err != nil {
		log.Fatal("ecfrmd: ", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           n,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("data node (%s backend, elem %d) on %s", n.Backend(), *elem, *addr)
	serveUntilSignalled(srv,
		func() { n.SetDraining(true) },
		n.Close)
}
