// Command ecfrmd serves the erasure-coded blob store over HTTP — a
// miniature erasure-coded object service for poking at EC-FRM behaviour
// interactively:
//
//	ecfrmd -addr :8080 -code lrc -k 6 -l 2 -m 2 -form ecfrm -elem 65536
//
//	curl -X PUT --data-binary @song.mp3 localhost:8080/objects/song.mp3
//	curl localhost:8080/objects/song.mp3 -o out.mp3 -D -   # note X-Read-Cost
//	curl -X POST 'localhost:8080/admin/fail?disk=3'
//	curl localhost:8080/objects/song.mp3 -o out.mp3        # degraded, still OK
//	curl -X POST 'localhost:8080/admin/recover?disk=3'
//	curl localhost:8080/admin/status
//
// A deterministic fault plan (see internal/faultinject) can be loaded at
// startup with -faults plan.json, or installed/cleared at runtime:
//
//	curl -X PUT --data-binary @plan.json localhost:8080/faults
//	curl localhost:8080/faults
//	curl -X DELETE localhost:8080/faults
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/httpd"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/store"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		code   = flag.String("code", "lrc", "candidate code: rs or lrc")
		k      = flag.Int("k", 6, "data elements per row")
		l      = flag.Int("l", 2, "local parities (lrc only)")
		m      = flag.Int("m", 2, "parities (rs) / global parities (lrc)")
		form   = flag.String("form", "ecfrm", "layout: standard, rotated, ecfrm")
		elem   = flag.Int("elem", 64<<10, "element size in bytes")
		faults = flag.String("faults", "", "JSON fault plan to install at startup (see internal/faultinject)")
	)
	flag.Parse()

	var (
		scheme *core.Scheme
		err    error
	)
	switch strings.ToLower(*code) {
	case "rs":
		var c *rs.Code
		if c, err = rs.New(*k, *m); err == nil {
			scheme, err = core.NewScheme(c, layout.Form(*form))
		}
	case "lrc":
		var c *lrc.Code
		if c, err = lrc.New(*k, *l, *m); err == nil {
			scheme, err = core.NewScheme(c, layout.Form(*form))
		}
	default:
		err = fmt.Errorf("unknown code %q", *code)
	}
	if err != nil {
		log.Fatal("ecfrmd: ", err)
	}
	st, err := store.New(scheme, *elem)
	if err != nil {
		log.Fatal("ecfrmd: ", err)
	}
	if *faults != "" {
		blob, err := os.ReadFile(*faults)
		if err != nil {
			log.Fatal("ecfrmd: ", err)
		}
		plan, err := faultinject.ParsePlan(blob)
		if err != nil {
			log.Fatal("ecfrmd: ", err)
		}
		st.SetFaultInjector(faultinject.New(plan))
		log.Printf("fault plan %s installed: seed %d, %d device policies",
			*faults, plan.Seed, len(plan.Policies))
	}
	log.Printf("serving %s (%d disks, tolerates %d failures, %.2fx overhead) on %s",
		scheme.Name(), scheme.N(), scheme.FaultTolerance(), scheme.StorageOverhead(), *addr)
	log.Fatal(http.ListenAndServe(*addr, httpd.NewServer(st)))
}
