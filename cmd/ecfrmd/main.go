// Command ecfrmd serves the erasure-coded blob store over HTTP — a
// miniature erasure-coded object service for poking at EC-FRM behaviour
// interactively:
//
//	ecfrmd -addr :8080 -code lrc -k 6 -l 2 -m 2 -form ecfrm -elem 65536
//
//	curl -X PUT --data-binary @song.mp3 localhost:8080/objects/song.mp3
//	curl localhost:8080/objects/song.mp3 -o out.mp3 -D -   # note X-Read-Cost
//	curl -X POST 'localhost:8080/admin/fail?disk=3'
//	curl localhost:8080/objects/song.mp3 -o out.mp3        # degraded, still OK
//	curl -X POST 'localhost:8080/admin/recover?disk=3'
//	curl localhost:8080/admin/status
//
// A deterministic fault plan (see internal/faultinject) can be loaded at
// startup with -faults plan.json, or installed/cleared at runtime:
//
//	curl -X PUT --data-binary @plan.json localhost:8080/faults
//	curl localhost:8080/faults
//	curl -X DELETE localhost:8080/faults
//
// Observability: GET /metrics always serves the Prometheus text exposition
// (per-disk load counters, the max-disk-load histogram, cache and latency
// distributions — see internal/obs). -obs additionally mounts net/http/pprof
// under /debug/pprof/ and logs a periodic load-imbalance line (max/mean
// element reads per disk over the interval), the live view of the paper's
// claim that EC-FRM keeps the most-loaded disk close to the mean:
//
//	ecfrmd -obs -obs-interval 10s
//	curl localhost:8080/metrics
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=5
//
// Read execution: by default GETs run through the parallel fan-out executor
// (per-device coalesced runs, bounded worker pool). -fanout=false restores
// the sequential executor; -read-concurrency bounds the per-read worker
// count; -hedge enables speculative re-reads of straggling devices after a
// -hedge-quantile latency delay (clamped below by -hedge-min). Individual
// GETs can override with ?sequential=, ?concurrency=, ?hedge= and bypass the
// cache with ?nocache=1.
//
// Write execution: PUTs queue into a group-commit WAL and ack once their
// batch seals, so concurrent small objects pack into shared stripes instead
// of flush-padding one stripe each. -wal-batch sets the byte threshold that
// triggers an immediate commit (default one stripe of user data);
// -wal-flush-interval bounds how long a lone PUT waits for company.
//
// Storage backend: by default the store lives in memory and dies with the
// process. -backend=file puts one data/checksum file pair per device in
// -data-dir, fronted by per-device async submission queues, and makes
// commits crash-consistent (write, fsync barrier, then publish; tune with
// -fsync=always|never and -direct). Startup re-derives the sealed extent
// from the files, heals torn cells, truncates torn tails, and replays the
// spilled WAL (-wal-log, default <data-dir>/wal.log):
//
//	ecfrmd -backend=file -data-dir /var/lib/ecfrm
//	curl -X PUT --data-binary @song.mp3 localhost:8080/objects/song.mp3
//	# kill -9, restart with the same -data-dir: the bytes are still there
//
// Object names live only in httpd memory for now, so after a restart
// recovered bytes are reachable by offset (store-level), not by name.
//
// Self-healing: -repair starts the background repair scheduler
// (internal/repair). It watches per-device error counts and latency
// quantiles, fail-stops disks that exceed the error burst or limp far
// behind their peers, and rebuilds them incrementally under a token-bucket
// rate limit (-repair-rate MiB/s) that backs off further whenever
// foreground reads are in flight. It also runs a continuous incremental
// checksum scrub (-scrub-interval between batches) whose cursor persists
// in <data-dir>/scrub.cursor with -backend=file, so a restarted daemon
// resumes scrubbing where it left off. Operator surface under /repair/:
//
//	ecfrmd -repair -repair-rate 64 -scrub-interval 30s
//	curl localhost:8080/repair/                       # JSON status
//	curl -X POST 'localhost:8080/repair/rebuild?disk=3'
//	curl -X POST 'localhost:8080/repair/migrate?disk=3'
//	curl -X POST 'localhost:8080/repair/scrub'        # kick a batch now
//	curl -X POST 'localhost:8080/repair/rate?bytes=8388608'
//
// MTTR, repair bytes, backoff, and scrub progress export on /metrics as
// ecfrm_repair_* and ecfrm_scrub_* series.
//
// The daemon shuts down gracefully: SIGINT/SIGTERM stops accepting new
// connections, drains in-flight requests for up to 10 seconds, then commits
// anything still queued in the WAL.
//
// Cluster modes: -mode picks which half of the cluster split this process
// runs. The default, -mode=single, is everything in one process as described
// above. -mode=node serves a data node: dumb per-(group,disk) cell extents
// behind the nodeapi HTTP protocol (mem or file backend, rediscovered from
// -data-dir on restart), plus /healthz, /readyz, /node/status, and /metrics.
// -mode=gateway serves the object API by fanning erasure-coded cell I/O out
// to the nodes listed in -nodes, hashing object names across -groups stripe
// groups:
//
//	ecfrmd -mode=node -addr :9001 -elem 65536 -backend=file -data-dir /var/lib/ecfrm/n1
//	ecfrmd -mode=node -addr :9002 -elem 65536 -backend=file -data-dir /var/lib/ecfrm/n2
//	ecfrmd -mode=node -addr :9003 -elem 65536 -backend=file -data-dir /var/lib/ecfrm/n3
//	ecfrmd -mode=gateway -addr :8080 -elem 65536 \
//	    -nodes http://localhost:9001,http://localhost:9002,http://localhost:9003
//	curl -X PUT --data-binary @song.mp3 localhost:8080/objects/song.mp3
//	curl localhost:8080/objects/song.mp3 -o out.mp3    # cells fetched node-side
//
// The gateway accepts the same scheme, WAL, and read-executor flags as
// single mode (-code/-k/-l/-m/-form, -wal-batch/-wal-flush-interval,
// -fanout/-read-concurrency/-hedge*), probes node health every
// -probe-interval, re-derives sealed extents from the nodes with -recover,
// and runs the node-side fsync commit barrier unless -fsync=never. Killing a
// whole node mid-traffic keeps reads serving degraded through the surviving
// nodes as long as the placement keeps each group within the scheme's fault
// tolerance (the gateway refuses to start otherwise; add nodes or lower n).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/httpd"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/rs"
	"repro/internal/store"
)

var (
	mode     = flag.String("mode", "single", "process role: single (store+API in one process), node (data node), gateway (access service over -nodes)")
	addr     = flag.String("addr", ":8080", "listen address")
	code     = flag.String("code", "lrc", "candidate code: rs or lrc")
	k        = flag.Int("k", 6, "data elements per row")
	l        = flag.Int("l", 2, "local parities (lrc only)")
	m        = flag.Int("m", 2, "parities (rs) / global parities (lrc)")
	form     = flag.String("form", "ecfrm", "layout: standard, rotated, ecfrm")
	elem     = flag.Int("elem", 64<<10, "element size in bytes")
	backend  = flag.String("backend", "mem", "device backend: mem (volatile) or file (one data/crc file pair per device)")
	dataDir  = flag.String("data-dir", "", "data directory for -backend=file")
	fsync    = flag.String("fsync", "always", "file backend durability: always (fsync barrier per commit) or never")
	direct   = flag.Bool("direct", false, "request O_DIRECT on device data files (needs 4KiB-aligned -elem)")
	walLog   = flag.String("wal-log", "", "WAL spill file (default <data-dir>/wal.log with -backend=file; empty with mem)")
	faults   = flag.String("faults", "", "JSON fault plan to install at startup (see internal/faultinject)")
	obsOn    = flag.Bool("obs", false, "enable pprof endpoints and the periodic load-imbalance log line")
	obsEvery = flag.Duration("obs-interval", 10*time.Second, "load-imbalance log interval (with -obs)")

	walBatch = flag.Int("wal-batch", 0, "group-commit byte threshold for PUTs (0 = one stripe of user data)")
	walEvery = flag.Duration("wal-flush-interval", store.DefaultFlushInterval,
		"max time a queued PUT waits for a group commit")

	repairOn   = flag.Bool("repair", false, "run the background repair/scrub scheduler")
	repairRate = flag.Float64("repair-rate", 32, "repair bandwidth budget in MiB/s of rebuilt data (0 pauses rebuilds)")
	scrubEvery = flag.Duration("scrub-interval", time.Minute, "pause between incremental scrub batches (negative disables scrub; needs -repair)")

	fanout   = flag.Bool("fanout", true, "serve reads through the parallel fan-out executor (false = sequential)")
	readConc = flag.Int("read-concurrency", 0, "max devices served concurrently per read (0 = one worker per device)")
	hedge    = flag.Bool("hedge", false, "hedge straggling device reads from parity-equivalent sources")
	hedgeQ   = flag.Float64("hedge-quantile", 0.9, "latency quantile after which a straggler is hedged")
	hedgeMin = flag.Duration("hedge-min", time.Millisecond, "lower clamp on the hedge delay")

	nodesFlag   = flag.String("nodes", "", "comma-separated data-node base URLs (gateway mode, required)")
	groups      = flag.Int("groups", 4, "stripe groups object names hash across (gateway mode)")
	probeEvery  = flag.Duration("probe-interval", time.Second, "node health-probe cadence (gateway mode)")
	nodeTimeout = flag.Duration("node-timeout", 5*time.Second, "per-node request timeout before a node counts as unavailable (gateway mode)")
	gwRecover   = flag.Bool("recover", false, "re-derive sealed extents from the nodes at startup (gateway mode)")
)

func main() {
	flag.Parse()
	switch *mode {
	case "single":
		runSingle()
	case "node":
		runNode()
	case "gateway":
		runGateway()
	default:
		log.Fatalf("ecfrmd: unknown -mode %q (single, node, or gateway)", *mode)
	}
}

// buildScheme constructs the erasure-coding scheme from the code flags.
func buildScheme() *core.Scheme {
	var (
		scheme *core.Scheme
		err    error
	)
	switch strings.ToLower(*code) {
	case "rs":
		var c *rs.Code
		if c, err = rs.New(*k, *m); err == nil {
			scheme, err = core.NewScheme(c, layout.Form(*form))
		}
	case "lrc":
		var c *lrc.Code
		if c, err = lrc.New(*k, *l, *m); err == nil {
			scheme, err = core.NewScheme(c, layout.Form(*form))
		}
	default:
		err = fmt.Errorf("unknown code %q", *code)
	}
	if err != nil {
		log.Fatal("ecfrmd: ", err)
	}
	return scheme
}

// serveUntilSignalled runs srv until SIGINT/SIGTERM, flips the drain hook (so
// /readyz starts failing while in-flight requests finish), shuts the listener
// down with a 10s grace, then runs the closers in order.
func serveUntilSignalled(srv *http.Server, drain func(), closers ...func() error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal("ecfrmd: ", err)
	case <-ctx.Done():
		stop()
		if drain != nil {
			drain()
		}
		log.Print("signal received, draining (10s grace)")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Fatal("ecfrmd: shutdown: ", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("ecfrmd: ", err)
		}
		for _, fn := range closers {
			if err := fn(); err != nil {
				log.Fatal("ecfrmd: close: ", err)
			}
		}
		log.Print("drained, bye")
	}
}

// runSingle is the original everything-in-one-process daemon.
func runSingle() {
	scheme := buildScheme()
	var err error
	var st *store.Store
	switch *backend {
	case "mem":
		if st, err = store.New(scheme, *elem); err != nil {
			log.Fatal("ecfrmd: ", err)
		}
	case "file":
		if *dataDir == "" {
			log.Fatal("ecfrmd: -backend=file requires -data-dir")
		}
		if *fsync != string(store.FsyncAlways) && *fsync != string(store.FsyncNever) {
			log.Fatalf("ecfrmd: unknown -fsync mode %q (always or never)", *fsync)
		}
		var report *store.RecoveryReport
		st, report, err = store.OpenFileBacked(scheme, *elem, store.FileConfig{
			Dir:    *dataDir,
			Fsync:  store.FsyncMode(*fsync),
			Direct: *direct,
		})
		if err != nil {
			log.Fatal("ecfrmd: ", err)
		}
		log.Printf("file backend %s: %d stripes recovered (healed %d cells, re-encoded %d stripes, truncated %d torn stripes, O_DIRECT=%v)",
			*dataDir, report.Stripes, report.HealedCells, report.ReencodedStripes,
			report.TruncatedStripes, report.DirectActive)
		if *walLog == "" {
			*walLog = filepath.Join(*dataDir, "wal.log")
		}
		// Replay the spilled WAL before the new WAL attaches (attaching
		// truncates the file): commits that hardened in the log but not on
		// the devices are re-applied; orphaned un-acked puts are dropped.
		extents, dropped, err := store.RecoverWALFile(*walLog, st)
		if err != nil {
			log.Fatal("ecfrmd: wal recovery: ", err)
		}
		if len(extents) > 0 || dropped > 0 {
			log.Printf("wal log %s: %d committed objects verified, %d un-acked puts dropped",
				*walLog, len(extents), dropped)
		}
	default:
		log.Fatalf("ecfrmd: unknown backend %q (mem or file)", *backend)
	}
	if *faults != "" {
		blob, err := os.ReadFile(*faults)
		if err != nil {
			log.Fatal("ecfrmd: ", err)
		}
		plan, err := faultinject.ParsePlan(blob)
		if err != nil {
			log.Fatal("ecfrmd: ", err)
		}
		st.SetFaultInjector(faultinject.New(plan))
		log.Printf("fault plan %s installed: seed %d, %d device policies",
			*faults, plan.Seed, len(plan.Policies))
	}
	st.SetReadOptions(store.ReadOptions{
		Sequential:  !*fanout,
		Concurrency: *readConc,
		Hedge: store.HedgeConfig{
			Enabled:  *hedge,
			Quantile: *hedgeQ,
			Min:      *hedgeMin,
		},
	})
	reg := obs.NewRegistry()
	handler := httpd.NewServerWith(st, httpd.Config{
		Registry:    reg,
		EnablePprof: *obsOn,
		WAL:         store.WALConfig{BatchBytes: *walBatch, FlushInterval: *walEvery, LogPath: *walLog},
	})

	// The repair scheduler mounts beside the object server, not inside it:
	// httpd stays ignorant of the repair package and the scheduler's own
	// handler owns everything under /repair/.
	var root http.Handler = handler
	var sch *repair.Scheduler
	if *repairOn {
		cursor := ""
		if *backend == "file" {
			cursor = filepath.Join(*dataDir, "scrub.cursor")
		}
		sch, err = repair.New(st, repair.Config{
			Rate:          *repairRate * (1 << 20),
			ScrubInterval: *scrubEvery,
			CursorPath:    cursor,
			Registry:      reg,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatal("ecfrmd: repair: ", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/repair/", http.StripPrefix("/repair", sch.Handler()))
		mux.Handle("/", handler)
		root = mux
		log.Printf("repair scheduler on /repair/: rate %.0f MiB/s, scrub interval %v, cursor %q",
			*repairRate, *scrubEvery, cursor)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: root,
		// Bound how long a peer may dribble headers and how long idle
		// keep-alive connections pin resources; response bodies (large
		// objects, pprof profiles) stay unbounded.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Periodic load-imbalance line: the paper's max-load claim, watchable in
	// the daemon's own log. Reported over the interval (deltas, not
	// lifetime totals), so a balanced steady state reads near 1.0 even after
	// an unbalanced past.
	stopObs := make(chan struct{})
	if *obsOn {
		go func() {
			n := scheme.N()
			prev := make([]int, n)
			tick := time.NewTicker(*obsEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopObs:
					return
				case <-tick.C:
					cur := make([]int, n)
					total, max := 0, 0
					for d := 0; d < n; d++ {
						cur[d] = st.Device(d).Reads()
						delta := cur[d] - prev[d]
						total += delta
						if delta > max {
							max = delta
						}
					}
					if total == 0 {
						prev = cur
						continue
					}
					mean := float64(total) / float64(n)
					log.Printf("load: %d element reads in %v, max/disk=%d mean/disk=%.1f imbalance=%.2f",
						total, *obsEvery, max, mean, float64(max)/mean)
					prev = cur
				}
			}
		}()
	}

	// Graceful shutdown: SIGINT/SIGTERM stops the listener and drains
	// in-flight requests for up to 10s before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %s (%d disks, tolerates %d failures, %.2fx overhead) on %s",
		scheme.Name(), scheme.N(), scheme.FaultTolerance(), scheme.StorageOverhead(), *addr)

	select {
	case err := <-errc:
		log.Fatal("ecfrmd: ", err)
	case <-ctx.Done():
		stop()
		close(stopObs)
		log.Print("signal received, draining (10s grace)")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Fatal("ecfrmd: shutdown: ", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("ecfrmd: ", err)
		}
		// The listener is drained; commit any queued PUTs and stop the WAL,
		// then seal the backend (file: manifest write + final fsync).
		if sch != nil {
			// Stop detection, scrub, and any in-flight rebuild (aborted
			// batches roll back; the disk stays failed and a restarted
			// daemon's detector re-queues it) before the store seals.
			sch.Close()
		}
		if err := handler.Close(); err != nil {
			log.Fatal("ecfrmd: wal close: ", err)
		}
		if err := st.Close(); err != nil {
			log.Fatal("ecfrmd: store close: ", err)
		}
		log.Print("drained, bye")
	}
}
