// Command layoutviz renders stripe layouts as ASCII grids in the style of
// the paper's Figures 1-5: one row of cells per stripe row, one column per
// disk, each cell labelled with its kind (d=data, p=parity) and its code
// group. It makes the EC-FRM transformation visible at a glance.
//
// Usage:
//
//	layoutviz -n 10 -k 6                  # all three forms for a (10,6) shape
//	layoutviz -code lrc -k 6 -l 2 -m 2    # derive the shape from a code
//	layoutviz -form ecfrm -groups         # one form, group-membership table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/layout"
)

func main() {
	var (
		n      = flag.Int("n", 0, "total elements per candidate row (overrides -code)")
		k      = flag.Int("k", 6, "data elements per candidate row")
		l      = flag.Int("l", 2, "local parities (lrc only)")
		m      = flag.Int("m", 2, "parities (rs) / global parities (lrc)")
		code   = flag.String("code", "lrc", "candidate family for shape derivation: rs or lrc")
		form   = flag.String("form", "", "render only this form: standard, rotated, ecfrm")
		groups = flag.Bool("groups", false, "also print the per-group element table")
	)
	flag.Parse()

	nn := *n
	if nn == 0 {
		switch strings.ToLower(*code) {
		case "rs":
			nn = *k + *m
		case "lrc":
			nn = *k + *l + *m
		default:
			fmt.Fprintf(os.Stderr, "layoutviz: unknown code %q\n", *code)
			os.Exit(2)
		}
	}

	forms := []layout.Form{layout.FormStandard, layout.FormRotated, layout.FormECFRM}
	if *form != "" {
		forms = []layout.Form{layout.Form(*form)}
	}
	for _, f := range forms {
		lay, err := layout.New(f, nn, *k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "layoutviz:", err)
			os.Exit(1)
		}
		render(lay, *groups)
		fmt.Println()
	}
}

func render(lay layout.Layout, groups bool) {
	fmt.Printf("=== %s layout for a (%d,%d) candidate: %d row(s) × %d disks, %d group(s)\n",
		lay.Name(), lay.N(), lay.K(), lay.Rows(), lay.N(), lay.Groups())
	head := "      "
	for col := 0; col < lay.N(); col++ {
		head += fmt.Sprintf(" disk%-3d", col)
	}
	fmt.Println(head)
	for row := 0; row < lay.Rows(); row++ {
		line := fmt.Sprintf("row %-2d", row)
		for col := 0; col < lay.N(); col++ {
			c := lay.CellAt(layout.Pos{Row: row, Col: col})
			kind := "d"
			if !c.IsData {
				kind = "p"
			}
			line += fmt.Sprintf(" %s%d.e%-3d", kind, c.Group, c.Element)
		}
		fmt.Println(line)
	}
	if lay.Name() == "rotated" {
		fmt.Println("  (columns shown logically; stripe s maps column c to disk (c-s) mod n)")
	}
	if groups {
		fmt.Println("  group membership (element t of group g → cell):")
		for g := 0; g < lay.Groups(); g++ {
			var parts []string
			for t := 0; t < lay.N(); t++ {
				p := lay.GroupCell(g, t)
				parts = append(parts, fmt.Sprintf("t%d→(%d,%d)", t, p.Row, p.Col))
			}
			fmt.Printf("  G%d: %s\n", g, strings.Join(parts, " "))
		}
	}
}
