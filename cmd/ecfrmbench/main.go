// Command ecfrmbench regenerates the EC-FRM paper's evaluation (§VI): every
// figure — 8a, 8b (normal read speed), 9a, 9b (degraded read cost), 9c, 9d
// (degraded read speed) — as a text table, using the paper's protocol
// (2000 normal-read trials, 5000 degraded-read trials, request sizes of 1-20
// one-megabyte elements, Table I parameters).
//
// Usage:
//
//	ecfrmbench                 # all figures, full protocol
//	ecfrmbench -fig 8a         # one figure
//	ecfrmbench -quick          # reduced trial counts for a fast look
//	ecfrmbench -seed 7 -elem 4194304
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/disksim"
	"repro/internal/experiment"
)

func main() {
	var (
		figID       = flag.String("fig", "", "figure to regenerate (8a,8b,9a,9b,9c,9d); empty = all")
		quick       = flag.Bool("quick", false, "reduced trial counts (200/300) for a fast run")
		seed        = flag.Int64("seed", 0, "workload and timing seed (0 = paper default)")
		elem        = flag.Int("elem", 0, "element size in bytes (0 = 1 MiB)")
		trialsN     = flag.Int("normal-trials", 0, "normal-read trials (0 = paper's 2000)")
		trialsD     = flag.Int("degraded-trials", 0, "degraded-read trials (0 = paper's 5000)")
		position    = flag.Duration("positioning", 0, "disk positioning time (0 = calibrated default)")
		bwMBps      = flag.Float64("bandwidth", 0, "disk bandwidth MB/s (0 = calibrated default)")
		motivation  = flag.Bool("motivation", false, "also print the §III-A vertical-vs-horizontal comparison")
		recovery    = flag.Bool("recovery", false, "also print the single-disk recovery table")
		concurrency = flag.Bool("concurrency", false, "also print the open-loop concurrency extension sweep")
		network     = flag.Bool("network", false, "also print the client-bandwidth sensitivity sweep")
		csvDir      = flag.String("csv", "", "also write each figure as <dir>/fig<ID>.csv for plotting")
		kernels     = flag.String("kernels", "", "run the GF kernel microbenchmark and write JSON to this path (e.g. BENCH_kernels.json), then exit")
		kernels16   = flag.String("kernels16", "", "run the GF(2^16) kernel microbenchmark and write JSON to this path (e.g. BENCH_kernels16.json), then exit")
		widestripe  = flag.String("widestripe", "", "run the wide-stripe (k=64) end-to-end store sweep and write JSON to this path (e.g. BENCH_widestripe.json), then exit")
		readpath    = flag.String("readpath", "", "run the streaming-vs-buffered shardio benchmark and write JSON to this path (e.g. BENCH_readpath.json), then exit")
		readpathMB  = flag.Int64("readpath-bytes", 0, "readpath payload size in bytes (0 = 256 MiB)")
		fanoutOut   = flag.String("fanout", "", "run the fan-out read executor benchmark and write JSON to this path (e.g. BENCH_fanout.json), then exit")
		writepath   = flag.String("writepath", "", "run the group-commit write path benchmark and write JSON to this path (e.g. BENCH_writepath.json), then exit")
		diskOut     = flag.String("disk", "", "run the file-backend disk benchmark and write JSON to this path (e.g. BENCH_disk.json), then exit")
		repairOut   = flag.String("repair", "", "run the repair scheduler MTTR-vs-rate benchmark and write JSON to this path (e.g. BENCH_repair.json), then exit")
		clusterOut  = flag.String("cluster", "", "run the local-vs-networked cluster read benchmark and write JSON to this path (e.g. BENCH_cluster.json), then exit")
		diskDirect  = flag.Bool("disk-direct", false, "request O_DIRECT on the disk benchmark's device files")
		parallel    = flag.Int("parallel", 0, "measure figure (code, form) cells across this many workers; results are bit-identical to sequential")
	)
	flag.Parse()

	if *kernels != "" {
		if err := runKernelBench(*kernels); err != nil {
			fmt.Fprintln(os.Stderr, "kernels:", err)
			os.Exit(1)
		}
		return
	}
	if *kernels16 != "" {
		if err := runKernel16Bench(*kernels16); err != nil {
			fmt.Fprintln(os.Stderr, "kernels16:", err)
			os.Exit(1)
		}
		return
	}
	if *widestripe != "" {
		if err := runWideStripeBench(*widestripe); err != nil {
			fmt.Fprintln(os.Stderr, "widestripe:", err)
			os.Exit(1)
		}
		return
	}
	if *readpath != "" {
		if err := runReadpathBench(*readpath, *readpathMB); err != nil {
			fmt.Fprintln(os.Stderr, "readpath:", err)
			os.Exit(1)
		}
		return
	}
	if *fanoutOut != "" {
		if err := runFanoutBench(*fanoutOut); err != nil {
			fmt.Fprintln(os.Stderr, "fanout:", err)
			os.Exit(1)
		}
		return
	}
	if *writepath != "" {
		if err := runWritepathBench(*writepath); err != nil {
			fmt.Fprintln(os.Stderr, "writepath:", err)
			os.Exit(1)
		}
		return
	}
	if *diskOut != "" {
		if err := runDiskBench(*diskOut, *diskDirect); err != nil {
			fmt.Fprintln(os.Stderr, "disk:", err)
			os.Exit(1)
		}
		return
	}
	if *repairOut != "" {
		if err := runRepairBench(*repairOut); err != nil {
			fmt.Fprintln(os.Stderr, "repair:", err)
			os.Exit(1)
		}
		return
	}
	if *clusterOut != "" {
		if err := runClusterBench(*clusterOut); err != nil {
			fmt.Fprintln(os.Stderr, "cluster:", err)
			os.Exit(1)
		}
		return
	}

	opt := experiment.Options{
		ElementBytes:   *elem,
		Seed:           *seed,
		NormalTrials:   *trialsN,
		DegradedTrials: *trialsD,
		Parallel:       *parallel,
	}
	if *quick {
		if opt.NormalTrials == 0 {
			opt.NormalTrials = 200
		}
		if opt.DegradedTrials == 0 {
			opt.DegradedTrials = 300
		}
	}
	if *position != 0 || *bwMBps != 0 {
		cfg := disksim.DefaultConfig()
		if *position != 0 {
			cfg.Positioning = *position
		}
		if *bwMBps != 0 {
			cfg.BandwidthMBps = *bwMBps
		}
		opt.Disk = cfg
	}

	fmt.Println("EC-FRM evaluation reproduction (ICPP 2015, Fu/Shu/Shen)")
	fmt.Println("Table I configurations: RS (6,3) (8,4) (10,5); LRC (6,2,2) (8,2,3) (10,2,4)")
	fmt.Println()

	var figs []experiment.Figure
	if *figID == "" {
		figs = experiment.Figures
	} else {
		f, err := experiment.FigureByID(*figID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		figs = []experiment.Figure{f}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, f := range figs {
		res, err := experiment.Run(f, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, "fig"+f.ID+".csv")
			out, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := res.WriteCSV(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out.Close()
			fmt.Printf("(wrote %s)\n\n", path)
		}
	}
	if *motivation {
		rows, err := experiment.MotivationTable(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "motivation:", err)
			os.Exit(1)
		}
		fmt.Println(experiment.RenderMotivation(rows))
	}
	if *recovery {
		rows, err := experiment.RecoverySweep(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recovery:", err)
			os.Exit(1)
		}
		fmt.Println(experiment.RenderRecovery(rows))
	}
	if *network {
		points, err := experiment.BandwidthSweep([]float64{1250, 400, 100, 50, 25}, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandwidth:", err)
			os.Exit(1)
		}
		fmt.Println(experiment.RenderBandwidth(points))
	}
	if *concurrency {
		points, err := experiment.ConcurrencySweep(
			[]time.Duration{200 * time.Millisecond, 80 * time.Millisecond, 40 * time.Millisecond, 20 * time.Millisecond},
			1000, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "concurrency:", err)
			os.Exit(1)
		}
		fmt.Println(experiment.RenderConcurrency(points))
	}
}
