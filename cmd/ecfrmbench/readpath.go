// Read-path benchmark mode: -readpath <path> compares the buffered
// whole-payload shardio pipeline against the streaming stripe-at-a-time one
// on a real file, end to end (encode: file → shard directory; decode: shard
// directory → payload), across worker counts. Alongside throughput it
// records the allocation volume of each run — the streaming path's win on a
// large payload is as much about not materializing O(file) buffers as about
// pipelining — and writes JSON so later PRs can track the trajectory.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/rs"
	"repro/internal/shardio"
)

// readpathElemBytes is the element size for the sweep — the paper's ~1 MB
// element, which also keeps the per-worker stripe footprint (k × elem)
// honest for the memory-bound claim.
const readpathElemBytes = 1 << 20

// readpathWorkerCounts is the streaming worker sweep.
var readpathWorkerCounts = []int{1, 2, 4, 8}

type readpathResult struct {
	Op         string  `json:"op"`   // "encode" or "decode"
	Path       string  `json:"path"` // "buffered" or "streaming"
	Workers    int     `json:"workers,omitempty"`
	Seconds    float64 `json:"seconds"`
	MBps       float64 `json:"mbps"`
	AllocMB    float64 `json:"alloc_mb"` // total bytes allocated during the run
	HeapPeakMB float64 `json:"heap_peak_mb"`
}

type readpathReport struct {
	GOOS         string           `json:"goos"`
	GOARCH       string           `json:"goarch"`
	CPUs         int              `json:"cpus"`
	SIMD         bool             `json:"simd"`
	Timestamp    string           `json:"timestamp"`
	Scheme       string           `json:"scheme"`
	ElemBytes    int              `json:"elem_bytes"`
	PayloadBytes int64            `json:"payload_bytes"`
	Results      []readpathResult `json:"results"`
}

// readpathReps is how many times each timed configuration runs; the fastest
// run is reported. On a shared host a single run is hostage to neighbor
// noise, and the minimum is the standard robust estimator of the true cost.
// The repetitions are interleaved — every configuration runs once per round —
// so a multi-second noise window taxes all configurations alike instead of
// whichever one happened to be on the clock.
const readpathReps = 3

// measureRun times fn and captures its allocation volume and peak live heap.
// The peak is sampled every 25ms while fn runs: HeapSys would report the
// process-lifetime high-water mark, which says nothing about the run at hand.
func measureRun(fn func() error) (readpathResult, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	peak := before.HeapAlloc
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	close(stop)
	<-sampled
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peak {
		peak = after.HeapAlloc
	}
	return readpathResult{
		Seconds:    elapsed.Seconds(),
		AllocMB:    float64(after.TotalAlloc-before.TotalAlloc) / 1e6,
		HeapPeakMB: float64(peak) / 1e6,
	}, err
}

// writePayloadFile fills path with size pseudorandom bytes in bounded chunks.
func writePayloadFile(path string, size int64, seed int64) (sum [sha256.Size]byte, err error) {
	f, err := os.Create(path)
	if err != nil {
		return sum, err
	}
	defer f.Close()
	h := sha256.New()
	rng := rand.New(rand.NewSource(seed))
	chunk := make([]byte, 4<<20)
	for written := int64(0); written < size; {
		n := int64(len(chunk))
		if size-written < n {
			n = size - written
		}
		rng.Read(chunk[:n])
		if _, err := f.Write(chunk[:n]); err != nil {
			return sum, err
		}
		h.Write(chunk[:n])
		written += n
	}
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// readpathWarmup encodes and decodes a small payload through both paths
// until back-to-back encode times agree, discarding the results.
func readpathWarmup(scheme *core.Scheme, tmp string) error {
	const warmBytes = 16 << 20
	warmIn := filepath.Join(tmp, "warmup.bin")
	if _, err := writePayloadFile(warmIn, warmBytes, 1); err != nil {
		return err
	}
	defer os.Remove(warmIn)
	dir := filepath.Join(tmp, "warmup-shards")
	prev := 0.0
	for i := 0; i < 8; i++ {
		in, err := os.Open(warmIn)
		if err != nil {
			return err
		}
		start := time.Now()
		_, err = shardio.EncodeStream(scheme, in, dir, readpathElemBytes, shardio.Manifest{}, 2)
		in.Close()
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		if _, _, err := shardio.Decode(scheme, dir); err != nil {
			return err
		}
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
		// Stable once two consecutive encode passes agree within 25%.
		if prev > 0 && elapsed < prev*1.25 && prev < elapsed*1.25 {
			break
		}
		prev = elapsed
	}
	return nil
}

// runReadpathBench runs the sweep and writes the JSON report to path.
// payloadBytes ≤ 0 selects the default 256 MiB.
func runReadpathBench(path string, payloadBytes int64) error {
	if payloadBytes <= 0 {
		payloadBytes = 256 << 20
	}
	code, err := rs.New(6, 3)
	if err != nil {
		return err
	}
	scheme, err := core.NewScheme(code, layout.FormECFRM)
	if err != nil {
		return err
	}
	tmp, err := os.MkdirTemp("", "ecfrm-readpath-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Stage timings for every timed run accumulate here and are dumped as a
	// Prometheus text snapshot alongside the JSON: the per-stage (produce /
	// work / commit) distributions say *where* a configuration's time went,
	// which the end-to-end MB/s figure cannot.
	reg := obs.NewRegistry()
	shardio.EnableMetrics(reg)
	defer shardio.EnableMetrics(nil)

	inPath := filepath.Join(tmp, "payload.bin")
	wantSum, err := writePayloadFile(inPath, payloadBytes, 2015)
	if err != nil {
		return err
	}
	rep := readpathReport{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.GOMAXPROCS(0),
		SIMD:         gf.SIMDEnabled(),
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		Scheme:       scheme.Name(),
		ElemBytes:    readpathElemBytes,
		PayloadBytes: payloadBytes,
	}
	mbps := func(sec float64) float64 { return float64(payloadBytes) / sec / 1e6 }
	fmt.Printf("read-path sweep: %s, %d MiB payload, %d KiB elements, %d CPU(s)\n",
		scheme.Name(), payloadBytes>>20, readpathElemBytes>>10, rep.CPUs)

	// Untimed warmup: the first seconds of a fresh process routinely run far
	// below steady state (cold page cache, host contention), and whichever
	// configuration happens to go first would eat that penalty. Push both
	// paths through a small payload until throughput stabilizes so every
	// timed run below measures steady state.
	if err := readpathWarmup(scheme, tmp); err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %8s %10s %12s %12s\n", "op", "path", "workers", "MB/s", "alloc MB", "heap MB")
	record := func(op, pathName string, workers int, r readpathResult) {
		r.Op, r.Path, r.Workers = op, pathName, workers
		r.MBps = mbps(r.Seconds)
		rep.Results = append(rep.Results, r)
		w := "-"
		if workers > 0 {
			w = fmt.Sprint(workers)
		}
		fmt.Printf("%-8s %-10s %8s %10.1f %12.1f %12.1f\n", op, pathName, w, r.MBps, r.AllocMB, r.HeapPeakMB)
	}

	// checkSum decodes a shard directory through the given decode func and
	// verifies the payload hash, so every timed decode also proves itself.
	checkSum := func(h hash.Hash) error {
		if got := h.Sum(nil); !bytes.Equal(got, wantSum[:]) {
			return fmt.Errorf("readpath: decoded payload hash mismatch")
		}
		return nil
	}

	// The timed configurations. Each encode resets its shard directory and
	// re-encodes; the matching decode reads the directory its encode left
	// behind in the same round and verifies the payload hash, so every timed
	// decode also proves itself.
	type timedRun struct {
		op, pathName string
		workers      int
		fn           func() error
	}
	var runs []timedRun
	bufDir := filepath.Join(tmp, "buffered")
	runs = append(runs,
		timedRun{"encode", "buffered", 0, func() error {
			if err := os.RemoveAll(bufDir); err != nil {
				return err
			}
			payload, err := os.ReadFile(inPath)
			if err != nil {
				return err
			}
			_, err = shardio.Encode(scheme, payload, bufDir, readpathElemBytes, shardio.Manifest{})
			return err
		}},
		timedRun{"decode", "buffered", 0, func() error {
			payload, _, err := shardio.Decode(scheme, bufDir)
			if err != nil {
				return err
			}
			h := sha256.New()
			h.Write(payload)
			return checkSum(h)
		}},
	)
	for _, workers := range readpathWorkerCounts {
		workers := workers
		dir := filepath.Join(tmp, fmt.Sprintf("stream-w%d", workers))
		runs = append(runs,
			timedRun{"encode", "streaming", workers, func() error {
				if err := os.RemoveAll(dir); err != nil {
					return err
				}
				in, err := os.Open(inPath)
				if err != nil {
					return err
				}
				defer in.Close()
				_, err = shardio.EncodeStream(scheme, in, dir, readpathElemBytes, shardio.Manifest{}, workers)
				return err
			}},
			timedRun{"decode", "streaming", workers, func() error {
				h := sha256.New()
				if _, err := shardio.DecodeStream(scheme, dir, h, workers); err != nil {
					return err
				}
				return checkSum(h)
			}},
		)
	}

	best := make([]readpathResult, len(runs))
	for rep := 0; rep < readpathReps; rep++ {
		for i, ru := range runs {
			r, err := measureRun(ru.fn)
			if err != nil {
				return fmt.Errorf("%s %s w%d: %w", ru.op, ru.pathName, ru.workers, err)
			}
			if rep == 0 || r.Seconds < best[i].Seconds {
				best[i] = r
			}
		}
	}
	for i, ru := range runs {
		record(ru.op, ru.pathName, ru.workers, best[i])
	}

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)

	metricsPath := strings.TrimSuffix(path, ".json") + ".metrics.prom"
	mf, err := os.Create(metricsPath)
	if err != nil {
		return err
	}
	if err := reg.WriteText(mf); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", metricsPath)
	return nil
}
