// Write-path benchmark mode: -writepath <path> measures the tentpole claims
// of the group-commit write path and writes BENCH_writepath.json.
//
// Two scenarios:
//
//   - small-object PUT throughput: N 4 KiB objects stored by W concurrent
//     writers, once through the old per-object path (a global lock around
//     Append+Flush, one padded stripe per object — exactly what the HTTP
//     handler used to do) and once through the WAL (objects pack into shared
//     stripes; writers block only on their batch's group commit). A uniform
//     per-device write latency keeps the benchmark I/O-shaped rather than
//     memcpy-shaped (same trick as the fanout bench): what's being measured
//     is cell writes per object, which packing divides by the batch size.
//     Every object is read back and byte-verified (injector cleared first),
//     so a fast-but-lossy batcher cannot post a score.
//
//   - parity-delta partial writes: M single-element overwrites applied to
//     identical sealed stores via the parity-delta path (WriteAt: read old
//     cell, XOR, apply delta to parities) and via full-stripe re-encode
//     (WriteAtReencode). The stores must end byte-identical; the report
//     compares device elements written per update.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/rs"
	"repro/internal/store"
)

const (
	writepathElemBytes = 4 << 10
	writepathObjBytes  = 4 << 10
	writepathObjects   = 800
	writepathWriters   = 8
	writepathUpdates   = 200
	// writepathCellLatency models a fast device's per-cell write cost. Both
	// paths pay it identically per gated cell write; packing wins by issuing
	// ~18x fewer of them per object.
	writepathCellLatency = 200 * time.Microsecond
)

type writepathPutResult struct {
	Path         string  `json:"path"` // "per-object" or "wal"
	Objects      int     `json:"objects"`
	Writers      int     `json:"writers"`
	Seconds      float64 `json:"seconds"`
	ObjectsPerS  float64 `json:"objects_per_s"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Stripes      int     `json:"stripes_sealed"`
	DeviceWrites int     `json:"device_element_writes"`
	BytesPerObj  float64 `json:"device_bytes_per_object"`
	// SpeedupVsPerObject is this path's objects/s over the per-object
	// baseline (1.0 for the baseline row).
	SpeedupVsPerObject float64 `json:"speedup_vs_per_object"`
}

type writepathDeltaResult struct {
	Path          string  `json:"path"` // "parity-delta" or "reencode"
	Updates       int     `json:"updates"`
	DeviceWrites  int     `json:"device_element_writes"`
	WritesPerUpd  float64 `json:"element_writes_per_update"`
	DeviceReads   int     `json:"device_element_reads"`
	Seconds       float64 `json:"seconds"`
	BytesIdential bool    `json:"byte_identical_to_peer"`
}

type writepathReport struct {
	GOOS      string                 `json:"goos"`
	GOARCH    string                 `json:"goarch"`
	CPUs      int                    `json:"cpus"`
	Timestamp string                 `json:"timestamp"`
	Scheme    string                 `json:"scheme"`
	ElemBytes int                    `json:"elem_bytes"`
	Put       []writepathPutResult   `json:"put"`
	Delta     []writepathDeltaResult `json:"partial_write"`
}

func newWritepathStore() (*store.Store, error) {
	code, err := rs.New(6, 3)
	if err != nil {
		return nil, err
	}
	scheme, err := core.NewScheme(code, layout.FormECFRM)
	if err != nil {
		return nil, err
	}
	return store.New(scheme, writepathElemBytes)
}

// writepathObject deterministically generates object i's payload.
func writepathObject(i int) []byte {
	buf := make([]byte, writepathObjBytes)
	rand.New(rand.NewSource(int64(i) + 1)).Read(buf)
	return buf
}

func totalDeviceWrites(st *store.Store) int {
	n := 0
	for d := 0; d < st.Scheme().N(); d++ {
		n += st.Device(d).Writes()
	}
	return n
}

func totalDeviceReads(st *store.Store) int {
	n := 0
	for d := 0; d < st.Scheme().N(); d++ {
		n += st.Device(d).Reads()
	}
	return n
}

func percentiles(lats []time.Duration) (p50, p99 float64) {
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return float64(lats[len(lats)/2]) / 1e6, float64(lats[(len(lats)*99)/100]) / 1e6
}

// runWritepathPut measures one write path ("per-object" or "wal") end to end
// and verifies every stored object.
func runWritepathPut(path string, rep *writepathReport) (*writepathPutResult, error) {
	st, err := newWritepathStore()
	if err != nil {
		return nil, err
	}
	if rep.Scheme == "" {
		rep.Scheme = st.Scheme().Name()
	}
	policies := make([]faultinject.Policy, st.Scheme().N())
	for d := range policies {
		policies[d] = faultinject.Policy{Device: d, Latency: writepathCellLatency}
	}
	st.SetFaultInjector(faultinject.New(faultinject.Plan{Seed: 11, Policies: policies}))
	offs := make([]int64, writepathObjects)
	lats := make([]time.Duration, writepathObjects)
	var mu sync.Mutex // serializes the per-object path, like the old handler
	var w *store.WAL
	if path == "wal" {
		w = store.NewWAL(st, store.WALConfig{})
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, writepathWriters)
	for g := 0; g < writepathWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < writepathObjects; i += writepathWriters {
				obj := writepathObject(i)
				t0 := time.Now()
				if w != nil {
					off, err := w.Put(context.Background(), obj)
					if err != nil {
						errs[g] = err
						return
					}
					offs[i] = off
				} else {
					mu.Lock()
					offs[i] = st.NextOffset()
					err := st.Append(obj)
					if err == nil {
						err = st.Flush()
					}
					mu.Unlock()
					if err != nil {
						errs[g] = err
						return
					}
				}
				lats[i] = time.Since(t0)
			}
		}(g)
	}
	wg.Wait()
	if w != nil {
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Verify with the injector cleared — the read path is not under test.
	st.SetFaultInjector(nil)
	writes := totalDeviceWrites(st)
	for i := 0; i < writepathObjects; i++ {
		res, err := st.ReadAt(offs[i], writepathObjBytes)
		if err != nil {
			return nil, fmt.Errorf("%s: read back object %d: %w", path, i, err)
		}
		if !bytes.Equal(res.Data, writepathObject(i)) {
			return nil, fmt.Errorf("%s: object %d corrupted", path, i)
		}
	}

	p50, p99 := percentiles(lats)
	r := &writepathPutResult{
		Path:         path,
		Objects:      writepathObjects,
		Writers:      writepathWriters,
		Seconds:      elapsed.Seconds(),
		ObjectsPerS:  float64(writepathObjects) / elapsed.Seconds(),
		P50Ms:        p50,
		P99Ms:        p99,
		Stripes:      st.Stripes(),
		DeviceWrites: writes,
		BytesPerObj:  float64(writes) * writepathElemBytes / writepathObjects,
	}
	rep.Put = append(rep.Put, *r)
	return r, nil
}

// runWritepathDelta applies the same random single-element overwrites to two
// identical sealed stores through the two partial-write paths and compares
// cost and content.
func runWritepathDelta(rep *writepathReport) error {
	mk := func() (*store.Store, error) {
		st, err := newWritepathStore()
		if err != nil {
			return nil, err
		}
		base := make([]byte, 8*st.Scheme().DataPerStripe()*writepathElemBytes)
		rand.New(rand.NewSource(99)).Read(base)
		if err := st.Append(base); err != nil {
			return nil, err
		}
		if err := st.Flush(); err != nil {
			return nil, err
		}
		st.ResetCounters()
		return st, nil
	}
	delta, err := mk()
	if err != nil {
		return err
	}
	reenc, err := mk()
	if err != nil {
		return err
	}

	extent := delta.NextOffset()
	rng := rand.New(rand.NewSource(7))
	type upd struct {
		off  int64
		data []byte
	}
	updates := make([]upd, writepathUpdates)
	for i := range updates {
		off := int64(rng.Intn(int(extent)/writepathElemBytes)) * writepathElemBytes
		data := make([]byte, writepathElemBytes)
		rng.Read(data)
		updates[i] = upd{off, data}
	}

	run := func(st *store.Store, apply func(int64, []byte) error) (time.Duration, error) {
		start := time.Now()
		for _, u := range updates {
			if err := apply(u.off, u.data); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	dElapsed, err := run(delta, delta.WriteAt)
	if err != nil {
		return fmt.Errorf("parity-delta: %w", err)
	}
	rElapsed, err := run(reenc, reenc.WriteAtReencode)
	if err != nil {
		return fmt.Errorf("reencode: %w", err)
	}

	dWrites, rWrites := totalDeviceWrites(delta), totalDeviceWrites(reenc)
	dReads, rReads := totalDeviceReads(delta), totalDeviceReads(reenc)
	dRes, err := delta.ReadAt(0, int(extent))
	if err != nil {
		return err
	}
	rRes, err := reenc.ReadAt(0, int(extent))
	if err != nil {
		return err
	}
	same := bytes.Equal(dRes.Data, rRes.Data)
	if !same {
		return fmt.Errorf("parity-delta and re-encode stores diverged")
	}
	if dWrites >= rWrites {
		return fmt.Errorf("parity-delta wrote %d elements, re-encode %d; delta must be strictly cheaper", dWrites, rWrites)
	}
	rep.Delta = append(rep.Delta,
		writepathDeltaResult{
			Path: "parity-delta", Updates: writepathUpdates,
			DeviceWrites: dWrites, WritesPerUpd: float64(dWrites) / writepathUpdates,
			DeviceReads: dReads, Seconds: dElapsed.Seconds(), BytesIdential: same,
		},
		writepathDeltaResult{
			Path: "reencode", Updates: writepathUpdates,
			DeviceWrites: rWrites, WritesPerUpd: float64(rWrites) / writepathUpdates,
			DeviceReads: rReads, Seconds: rElapsed.Seconds(), BytesIdential: same,
		})
	fmt.Printf("%-14s %8d updates %10d elem writes (%6.1f/upd) %10d elem reads %8.3fs\n",
		"parity-delta", writepathUpdates, dWrites, float64(dWrites)/writepathUpdates, dReads, dElapsed.Seconds())
	fmt.Printf("%-14s %8d updates %10d elem writes (%6.1f/upd) %10d elem reads %8.3fs\n",
		"reencode", writepathUpdates, rWrites, float64(rWrites)/writepathUpdates, rReads, rElapsed.Seconds())
	fmt.Printf("parity-delta writes %.1fx fewer elements per update\n", float64(rWrites)/float64(dWrites))
	return nil
}

// runWritepathBench runs both scenarios and writes the JSON report to path.
func runWritepathBench(path string) error {
	rep := writepathReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		ElemBytes: writepathElemBytes,
	}
	fmt.Printf("write-path sweep: %d x %d KiB objects, %d writers, RS(6,3) ecfrm, %d KiB elements\n",
		writepathObjects, writepathObjBytes>>10, writepathWriters, writepathElemBytes>>10)
	fmt.Printf("%-12s %10s %9s %9s %9s %8s %14s\n",
		"path", "obj/s", "p50 ms", "p99 ms", "speedup", "stripes", "dev bytes/obj")

	base, err := runWritepathPut("per-object", &rep)
	if err != nil {
		return err
	}
	base.SpeedupVsPerObject = 1.0
	rep.Put[0].SpeedupVsPerObject = 1.0
	fmt.Printf("%-12s %10.0f %9.3f %9.3f %8.1fx %8d %14.0f\n",
		base.Path, base.ObjectsPerS, base.P50Ms, base.P99Ms, 1.0, base.Stripes, base.BytesPerObj)

	wal, err := runWritepathPut("wal", &rep)
	if err != nil {
		return err
	}
	speedup := wal.ObjectsPerS / base.ObjectsPerS
	wal.SpeedupVsPerObject = speedup
	rep.Put[1].SpeedupVsPerObject = speedup
	fmt.Printf("%-12s %10.0f %9.3f %9.3f %8.1fx %8d %14.0f\n",
		wal.Path, wal.ObjectsPerS, wal.P50Ms, wal.P99Ms, speedup, wal.Stripes, wal.BytesPerObj)

	fmt.Println()
	if err := runWritepathDelta(&rep); err != nil {
		return err
	}

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}
