// Repair benchmark mode: -repair <path> measures the repair scheduler's
// central trade-off — MTTR versus foreground interference as a function of
// the token-bucket rate limit — and writes BENCH_repair.json.
//
// For each rate limit a fresh in-memory store is filled, light latency
// faults are injected on every device (so foreground reads have realistic
// weight), a disk is fail-stopped, and the scheduler rebuilds it while four
// closed-loop readers hammer random stripe-sized reads. Each row reports
// the wall-clock MTTR, the achieved rebuild bandwidth, and the foreground
// p99 during the rebuild window next to a no-repair baseline p99 measured
// under the same fault plan and concurrency.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/repair"
	"repro/internal/store"
)

const (
	repairElemBytes = 64 << 10
	repairStripes   = 64
	repairClients   = 4
	// repairReadElems keeps foreground requests stripe-shaped: big enough
	// to touch several devices, small enough to finish in microseconds.
	repairReadElems = 6
	repairVictim    = 3
)

type repairResult struct {
	RateMiB float64 `json:"rate_mib_per_s"` // configured token-bucket rate
	MTTRMs  float64 `json:"mttr_ms"`        // fail-stop to rebuilt, wall clock
	// RebuiltMiB is the replacement data written (disk share of the store).
	RebuiltMiB float64 `json:"rebuilt_mib"`
	// AchievedMiB is RebuiltMiB / MTTR — below RateMiB when the bucket is
	// not the bottleneck or pressure backoff throttled further.
	AchievedMiB float64 `json:"achieved_mib_per_s"`
	BaselineP99 float64 `json:"fg_p99_baseline_ms"` // no repair running
	RebuildP99  float64 `json:"fg_p99_rebuild_ms"`  // during the rebuild
	FgSlowdown  float64 `json:"fg_p99_slowdown"`
	FgReads     int     `json:"fg_reads_during_rebuild"`
}

type repairReport struct {
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	CPUs      int            `json:"cpus"`
	Timestamp string         `json:"timestamp"`
	Scheme    string         `json:"scheme"`
	ElemBytes int            `json:"elem_bytes"`
	Stripes   int            `json:"stripes"`
	Clients   int            `json:"clients"`
	Results   []repairResult `json:"results"`
}

func runRepairBench(path string) error {
	rates := []float64{4, 16, 64, 256}
	rep := repairReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		ElemBytes: repairElemBytes,
		Stripes:   repairStripes,
		Clients:   repairClients,
	}
	for _, rate := range rates {
		res, scheme, err := repairBenchOne(rate)
		if err != nil {
			return fmt.Errorf("rate %.0f MiB/s: %w", rate, err)
		}
		rep.Scheme = scheme
		rep.Results = append(rep.Results, res)
		fmt.Printf("repair @ %4.0f MiB/s: MTTR %8.1f ms, achieved %6.1f MiB/s, fg p99 %.3f ms (baseline %.3f ms, %.2fx)\n",
			res.RateMiB, res.MTTRMs, res.AchievedMiB, res.RebuildP99, res.BaselineP99, res.FgSlowdown)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}

func repairBenchOne(rateMiB float64) (repairResult, string, error) {
	runtime.GC() // don't charge the previous run's garbage to this baseline
	scheme, err := core.NewScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	if err != nil {
		return repairResult{}, "", err
	}
	st, err := store.New(scheme, repairElemBytes)
	if err != nil {
		return repairResult{}, "", err
	}
	defer st.Close()

	data := make([]byte, repairStripes*scheme.DataPerStripe()*repairElemBytes)
	rand.New(rand.NewSource(42)).Read(data)
	if err := st.Append(data); err != nil {
		return repairResult{}, "", err
	}
	if err := st.Flush(); err != nil {
		return repairResult{}, "", err
	}

	// Light latency everywhere so foreground requests cost something real
	// and the rebuild's extra device work can actually interfere.
	plan := faultinject.Plan{Seed: 1}
	for d := 0; d < scheme.N(); d++ {
		plan.Policies = append(plan.Policies, faultinject.Policy{
			Device:  d,
			Latency: 20 * time.Microsecond,
			Jitter:  10 * time.Microsecond,
		})
	}
	st.SetFaultInjector(faultinject.New(plan))

	maxOff := len(data) - repairReadElems*repairElemBytes
	readOnce := func(rng *rand.Rand) (time.Duration, error) {
		off := (rng.Intn(maxOff/repairElemBytes + 1)) * repairElemBytes
		t0 := time.Now()
		_, err := st.ReadAt(int64(off), repairReadElems*repairElemBytes)
		return time.Since(t0), err
	}

	// Baseline: same fault plan, same concurrency, no repair traffic.
	base, err := repairConcurrentReads(readOnce, 600*time.Millisecond, nil)
	if err != nil {
		return repairResult{}, "", err
	}

	sch, err := repair.New(st, repair.Config{
		Rate:           rateMiB * (1 << 20),
		BatchStripes:   8,
		DetectInterval: 2 * time.Millisecond,
		ScrubInterval:  -1,
	})
	if err != nil {
		return repairResult{}, "", err
	}
	defer sch.Close()

	// Fail the victim and time the scheduler's detection + rebuild while
	// the foreground keeps reading (degraded until the rebuild lands).
	done := make(chan struct{})
	t0 := time.Now()
	st.FailDisk(repairVictim)
	var mttr time.Duration
	go func() {
		defer close(done)
		for len(st.FailedDisks()) != 0 || len(st.Rebuilding()) != 0 {
			time.Sleep(time.Millisecond)
		}
		mttr = time.Since(t0)
	}()
	during, err := repairConcurrentReads(readOnce, time.Hour, done)
	if err != nil {
		return repairResult{}, "", err
	}
	<-done
	if mttr <= 0 {
		return repairResult{}, "", fmt.Errorf("rebuild did not complete")
	}

	rebuiltMiB := float64(repairStripes*scheme.Layout().Rows()*repairElemBytes) / (1 << 20)
	p99Base := repairPercentile(base, 0.99)
	p99During := repairPercentile(during, 0.99)
	return repairResult{
		RateMiB:     rateMiB,
		MTTRMs:      float64(mttr) / float64(time.Millisecond),
		RebuiltMiB:  rebuiltMiB,
		AchievedMiB: rebuiltMiB / mttr.Seconds(),
		BaselineP99: float64(p99Base) / float64(time.Millisecond),
		RebuildP99:  float64(p99During) / float64(time.Millisecond),
		FgSlowdown:  float64(p99During) / float64(p99Base),
		FgReads:     len(during),
	}, scheme.Name(), nil
}

// repairConcurrentReads runs closed-loop readers until the duration elapses
// or stop closes, and returns every observed latency.
func repairConcurrentReads(read func(*rand.Rand) (time.Duration, error), d time.Duration, stop <-chan struct{}) ([]time.Duration, error) {
	var mu sync.Mutex
	var lats []time.Duration
	var firstErr error
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < repairClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for time.Now().Before(deadline) {
				if stop != nil {
					select {
					case <-stop:
						return
					default:
					}
				}
				lat, err := read(rng)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				lats = append(lats, lat)
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	return lats, firstErr
}

func repairPercentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(p*float64(len(s)-1))]
}
