// GF(2^16) kernel microbenchmark mode: -kernels16 <path> measures the bulk
// multiply-accumulate throughput of the wide-field kernels — SIMD split-table,
// word-parallel, and byte-wise reference — across shard sizes and writes
// BENCH_kernels16.json. The headline acceptance number is the SIMD/ref ratio
// on MulAddSlice-shaped work: the ISSUE requires at least 5x.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/gf16"
)

// kernel16Sources matches the wide-stripe hot path: a k=64 encode combines 64
// data shards per parity element. Larger than the GF(2^8) bench's 6 on
// purpose — wide stripes are the whole reason the field exists.
const kernel16Sources = 64

type kernel16Result struct {
	Kernel     string  `json:"kernel"` // "encode" or "reconstruct"
	Path       string  `json:"path"`   // "fast" or "ref"
	ShardBytes int     `json:"shard_bytes"`
	Sources    int     `json:"sources"`
	MBps       float64 `json:"mbps"`
}

type kernel16Report struct {
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	SIMD      bool             `json:"simd"`
	Timestamp string           `json:"timestamp"`
	Results   []kernel16Result `json:"results"`
	// SpeedupMulAdd is the geometric-mean fast/ref throughput ratio across
	// all cells — the single number CI can assert against.
	SpeedupMulAdd float64 `json:"speedup_muladd"`
}

// measureDot16 is measureDot for 16-bit coefficients: MB/s of source bytes
// pushed through one dot-product pass, best of three timed rounds.
func measureDot16(k, size int, seed int64, dot func(dst []byte, coeffs []uint16, vecs [][]byte)) float64 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]byte, k)
	for i := range vecs {
		vecs[i] = make([]byte, size)
		rng.Read(vecs[i])
	}
	coeffs := make([]uint16, k)
	for i := range coeffs {
		coeffs[i] = uint16(2 + rng.Intn(int(gf16.Order)-2)) // skip the 0/1 fast paths
	}
	dst := make([]byte, size)

	dot(dst, coeffs, vecs)
	start := time.Now()
	dot(dst, coeffs, vecs)
	per := time.Since(start)
	iters := int(40 * time.Millisecond / (per + 1))
	if iters < 1 {
		iters = 1
	}
	best := 0.0
	for round := 0; round < 3; round++ {
		start = time.Now()
		for i := 0; i < iters; i++ {
			dot(dst, coeffs, vecs)
		}
		elapsed := time.Since(start).Seconds()
		mbps := float64(k*size*iters) / elapsed / 1e6
		if mbps > best {
			best = mbps
		}
	}
	return best
}

// runKernel16Bench measures the wide-field multiply-accumulate for the fast
// (dispatching) and reference paths and writes the JSON report to path.
func runKernel16Bench(path string) error {
	rep := kernel16Report{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		SIMD:      gf16.SIMDEnabled(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	paths := []struct {
		name string
		dot  func(dst []byte, coeffs []uint16, vecs [][]byte)
	}{
		{"fast", gf16.DotSlice},
		{"ref", gf16.DotSliceRef},
	}
	fmt.Printf("GF(2^16) kernel throughput (MB/s of source bytes, %d sources, SIMD=%v)\n",
		kernel16Sources, rep.SIMD)
	fmt.Printf("%-12s %-6s %10s %12s\n", "kernel", "path", "shard", "MB/s")
	logRatioSum, cells := 0.0, 0
	for _, kind := range []struct {
		name string
		seed int64
	}{{"encode", 11}, {"reconstruct", 23}} {
		for _, size := range kernelShardSizes {
			var fast, ref float64
			for _, p := range paths {
				mbps := measureDot16(kernel16Sources, size, kind.seed, p.dot)
				if p.name == "fast" {
					fast = mbps
				} else {
					ref = mbps
				}
				rep.Results = append(rep.Results, kernel16Result{
					Kernel:     kind.name,
					Path:       p.name,
					ShardBytes: size,
					Sources:    kernel16Sources,
					MBps:       mbps,
				})
				fmt.Printf("%-12s %-6s %9dK %12.1f\n", kind.name, p.name, size>>10, mbps)
			}
			if fast > 0 && ref > 0 {
				logRatioSum += math.Log(fast / ref)
				cells++
			}
		}
	}
	if cells > 0 {
		rep.SpeedupMulAdd = math.Exp(logRatioSum / float64(cells))
	}
	fmt.Printf("geometric-mean fast/ref speedup: %.1fx\n", rep.SpeedupMulAdd)

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}
