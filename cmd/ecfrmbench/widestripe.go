// Wide-stripe end-to-end benchmark mode: -widestripe <path> runs the ISSUE's
// acceptance sweep — a (k=64, m=4) GF(2^16) stripe (plus LRC and CRS
// variants) through the full store: seal (encode + write), clean reads,
// degraded reads with the maximum tolerated disk failures, and whole-disk
// repair — and writes BENCH_widestripe.json. Every read is byte-verified
// against the original payload.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/store"
)

const (
	// wideElemBytes is a multiple of every wide code's SymbolBytes (2 for
	// the matrix codes, 16 for packet-layout CRS16).
	wideElemBytes = 4 << 10
	// wideStripes of payload per scheme keeps a cell under a second while
	// still spanning several full stripes.
	wideStripes = 6
)

type wideResult struct {
	Scheme       string  `json:"scheme"`
	N            int     `json:"n"`
	K            int     `json:"k"`
	PayloadMB    float64 `json:"payload_mb"`
	SealMBps     float64 `json:"seal_mbps"`
	ReadMBps     float64 `json:"read_mbps"`
	FailedDisks  int     `json:"failed_disks"`
	DegradedMBps float64 `json:"degraded_mbps"`
	RepairMs     float64 `json:"repair_ms"`
}

type wideReport struct {
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	CPUs      int          `json:"cpus"`
	Timestamp string       `json:"timestamp"`
	ElemBytes int          `json:"elem_bytes"`
	Results   []wideResult `json:"results"`
}

// runWideCell drives one scheme through seal, read, degraded read, and
// repair, returning the measured row.
func runWideCell(code codes.Code) (wideResult, error) {
	scheme, err := core.NewScheme(code, layout.FormECFRM)
	if err != nil {
		return wideResult{}, err
	}
	st, err := store.New(scheme, wideElemBytes)
	if err != nil {
		return wideResult{}, err
	}
	rng := rand.New(rand.NewSource(31))
	payload := make([]byte, wideStripes*scheme.DataPerStripe()*wideElemBytes)
	rng.Read(payload)
	res := wideResult{
		Scheme:    scheme.Name(),
		N:         code.N(),
		K:         code.K(),
		PayloadMB: float64(len(payload)) / 1e6,
	}

	start := time.Now()
	if err := st.Append(payload); err != nil {
		return res, err
	}
	if err := st.Flush(); err != nil {
		return res, err
	}
	res.SealMBps = res.PayloadMB / time.Since(start).Seconds()

	readAll := func(opts store.ReadOptions) (float64, error) {
		start := time.Now()
		r, err := st.ReadAtCtx(context.Background(), 0, len(payload), opts)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return 0, err
		}
		if !bytes.Equal(r.Data, payload) {
			return 0, fmt.Errorf("%s: payload mismatch", scheme.Name())
		}
		return res.PayloadMB / elapsed, nil
	}

	if res.ReadMBps, err = readAll(store.ReadOptions{Concurrency: 8}); err != nil {
		return res, err
	}

	// Fail as many distinct disks as the code tolerates, then read through
	// the rebuild path.
	for len(st.FailedDisks()) < scheme.FaultTolerance() {
		st.FailDiskWithinTolerance(rng.Intn(scheme.N()))
	}
	res.FailedDisks = len(st.FailedDisks())
	if res.DegradedMBps, err = readAll(store.ReadOptions{Concurrency: 8}); err != nil {
		return res, err
	}

	start = time.Now()
	for _, d := range st.FailedDisks() {
		if _, err := st.RecoverDisk(d); err != nil {
			return res, err
		}
	}
	res.RepairMs = float64(time.Since(start)) / 1e6
	if _, err := readAll(store.ReadOptions{}); err != nil {
		return res, fmt.Errorf("post-repair verify: %w", err)
	}
	return res, nil
}

// runWideStripeBench sweeps the wide schemes and writes the JSON report.
func runWideStripeBench(path string) error {
	rep := wideReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		ElemBytes: wideElemBytes,
	}
	fmt.Printf("wide-stripe end-to-end sweep: %d KiB elements, %d stripes per scheme\n",
		wideElemBytes>>10, wideStripes)
	fmt.Printf("%-20s %4s %9s %9s %9s %5s %9s %9s\n",
		"scheme", "n", "MB", "seal MB/s", "read MB/s", "fail", "degr MB/s", "repair ms")
	for _, code := range []codes.Code{
		rs.Must16(64, 4),
		lrc.Must16(64, 8, 2),
		crs.Must16(64, 4),
	} {
		r, err := runWideCell(code)
		if err != nil {
			return fmt.Errorf("%s: %w", code.Name(), err)
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-20s %4d %9.1f %9.1f %9.1f %5d %9.1f %9.1f\n",
			r.Scheme, r.N, r.PayloadMB, r.SealMBps, r.ReadMBps, r.FailedDisks, r.DegradedMBps, r.RepairMs)
	}

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}
