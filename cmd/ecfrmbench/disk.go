// Real-disk benchmark mode: -disk <path> exercises the file-backed device
// layer end to end and writes BENCH_disk.json with three sections:
//
//   - Write: streaming Append+Flush throughput under the FsyncAlways
//     commit discipline (write, fsync barrier, publish).
//   - Calibration: per-element read latencies at several element sizes are
//     fed to disksim.Calibrate, fitting the simulator's affine model
//     (latency = positioning + bytes/bandwidth) to THIS machine's backing
//     store. The report records the fitted constants, the mean absolute
//     relative error of the fit (the documented error bound), and each
//     size's measured-vs-predicted latency.
//   - Reads: sequential vs fan-out vs hedged executors over the file
//     backend, both raw and under an injected one-slow-device plan — the
//     same comparison BENCH_fanout.json makes for the memory backend,
//     driven here through real per-device submission queues.
//
// Every read is byte-verified against the original payload.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/rs"
	"repro/internal/store"
)

const (
	// diskWriteBytes sizes the streaming-write measurement.
	diskWriteBytes = 32 << 20
	// diskCalSamplesPerSize per element size; the calibration spans the
	// cross product.
	diskCalSamplesPerSize = 40
	// diskReadReps per executor configuration in the comparison sweep.
	diskReadReps = 15
	// diskReadElems is the width of one timed read, matching the fan-out
	// benchmark's 64-cell normal read.
	diskReadElems = 64
	// diskReadElemBytes keeps the comparison I/O-shaped, matching
	// fanoutElemBytes.
	diskReadElemBytes = 4 << 10
)

type diskCalPoint struct {
	ElemBytes      int     `json:"elem_bytes"`
	MeasuredP50Us  float64 `json:"measured_p50_us"`
	PredictedUs    float64 `json:"predicted_us"`
	RelativeErrP50 float64 `json:"relative_err_p50"`
}

type diskCalibration struct {
	PositioningUs float64 `json:"positioning_us"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	// MeanAbsRelErr is disksim.CalibrationError over the per-size median
	// latencies the fit used — the error bound within which the calibrated
	// simulator predicts this device's typical per-element read latency.
	MeanAbsRelErr float64        `json:"mean_abs_rel_err"`
	Samples       int            `json:"samples"`
	Points        []diskCalPoint `json:"points"`
}

type diskReadResult struct {
	Scenario            string  `json:"scenario"`
	Executor            string  `json:"executor"`
	Concurrency         int     `json:"concurrency,omitempty"`
	Hedged              bool    `json:"hedged,omitempty"`
	P50Ms               float64 `json:"p50_ms"`
	P99Ms               float64 `json:"p99_ms"`
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
}

type diskReport struct {
	GOOS         string           `json:"goos"`
	GOARCH       string           `json:"goarch"`
	CPUs         int              `json:"cpus"`
	Timestamp    string           `json:"timestamp"`
	Scheme       string           `json:"scheme"`
	Direct       bool             `json:"direct"`
	WriteMBps    float64          `json:"write_mbps"`
	WriteBytes   int              `json:"write_bytes"`
	Calibration  diskCalibration  `json:"calibration"`
	ReadElems    int              `json:"read_elems"`
	ReadElemSize int              `json:"read_elem_bytes"`
	Reps         int              `json:"reps"`
	Results      []diskReadResult `json:"results"`
}

// diskStore builds a sealed file-backed store in its own subdirectory of
// root, filled with a random payload of elems elements.
func diskStore(root, sub string, form layout.Form, elemBytes, elems int, direct bool) (*store.Store, []byte, error) {
	code, err := rs.New(6, 3)
	if err != nil {
		return nil, nil, err
	}
	scheme, err := core.NewScheme(code, form)
	if err != nil {
		return nil, nil, err
	}
	dir := root + "/" + sub
	st, _, err := store.OpenFileBacked(scheme, elemBytes, store.FileConfig{Dir: dir, Direct: direct})
	if err != nil {
		return nil, nil, err
	}
	payload := make([]byte, elems*elemBytes)
	rand.New(rand.NewSource(42)).Read(payload)
	if err := st.Append(payload); err != nil {
		st.Close()
		return nil, nil, err
	}
	if err := st.Flush(); err != nil {
		st.Close()
		return nil, nil, err
	}
	return st, payload, nil
}

// runDiskWrite measures streaming write throughput (Append+Flush under the
// fsync barrier discipline) into rep.
func runDiskWrite(root string, rep *diskReport, direct bool) error {
	code, err := rs.New(6, 3)
	if err != nil {
		return err
	}
	scheme, err := core.NewScheme(code, layout.FormECFRM)
	if err != nil {
		return err
	}
	st, _, err := store.OpenFileBacked(scheme, 64<<10, store.FileConfig{Dir: root + "/write", Direct: direct})
	if err != nil {
		return err
	}
	defer st.Close()
	rep.Scheme = scheme.Name()
	payload := make([]byte, diskWriteBytes)
	rand.New(rand.NewSource(7)).Read(payload)
	chunk := 1 << 20
	start := time.Now()
	for off := 0; off < len(payload); off += chunk {
		if err := st.Append(payload[off : off+chunk]); err != nil {
			return err
		}
	}
	if err := st.Flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	rep.WriteBytes = diskWriteBytes
	rep.WriteMBps = float64(diskWriteBytes) / 1e6 / elapsed.Seconds()
	fmt.Printf("write: %d MiB in %v through fsync barriers = %.1f MB/s\n",
		diskWriteBytes>>20, elapsed.Round(time.Millisecond), rep.WriteMBps)
	return nil
}

// runDiskCalibration measures per-element read latency at several element
// sizes, fits the disksim model, and records fit quality.
func runDiskCalibration(root string, rep *diskReport, direct bool) error {
	sizes := []int{16 << 10, 64 << 10, 256 << 10}
	var samples []disksim.Sample
	perSize := make(map[int][]time.Duration)
	for _, elemBytes := range sizes {
		// 256 elements per store keeps each directory modest while giving
		// the offset rotation room to defeat short-range locality.
		st, payload, err := diskStore(root, fmt.Sprintf("cal-%d", elemBytes),
			layout.FormECFRM, elemBytes, 256, direct)
		if err != nil {
			return err
		}
		seq := store.ReadOptions{Sequential: true}
		for i := 0; i < diskCalSamplesPerSize; i++ {
			off := int64(((i * 37) % 255) * elemBytes)
			start := time.Now()
			res, err := st.ReadAtCtx(context.Background(), off, elemBytes, seq)
			lat := time.Since(start)
			if err != nil {
				st.Close()
				return err
			}
			if !bytes.Equal(res.Data, payload[off:off+int64(elemBytes)]) {
				st.Close()
				return fmt.Errorf("calibration payload mismatch at %d", off)
			}
			if i < 4 {
				continue // warmup: pools, first-touch page faults
			}
			samples = append(samples, disksim.Sample{ElemBytes: elemBytes, Latency: lat})
			perSize[elemBytes] = append(perSize[elemBytes], lat)
		}
		if err := st.Close(); err != nil {
			return err
		}
	}
	// Fit on the per-size medians: page-cache read latencies have heavy
	// right tails (scheduler preemption, writeback interference), and a
	// least-squares fit over raw samples chases those outliers. The median
	// per size is the stable signal the simulator should reproduce.
	var medians []disksim.Sample
	for _, elemBytes := range sizes {
		lats := append([]time.Duration(nil), perSize[elemBytes]...)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		medians = append(medians, disksim.Sample{ElemBytes: elemBytes, Latency: lats[len(lats)/2]})
	}
	cfg, err := disksim.Calibrate(medians)
	if err != nil {
		return err
	}
	rep.Calibration = diskCalibration{
		PositioningUs: cfg.Positioning.Seconds() * 1e6,
		BandwidthMBps: cfg.BandwidthMBps,
		MeanAbsRelErr: disksim.CalibrationError(cfg, medians),
		Samples:       len(samples),
	}
	fmt.Printf("calibration: positioning %.1f µs, bandwidth %.1f MB/s over %d samples (mean |rel err| vs p50 %.1f%%)\n",
		rep.Calibration.PositioningUs, rep.Calibration.BandwidthMBps,
		len(samples), rep.Calibration.MeanAbsRelErr*100)
	for _, elemBytes := range sizes {
		lats := perSize[elemBytes]
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p50 := lats[len(lats)/2].Seconds()
		pred := cfg.Positioning.Seconds() + float64(elemBytes)/(cfg.BandwidthMBps*1e6)
		pt := diskCalPoint{
			ElemBytes:      elemBytes,
			MeasuredP50Us:  p50 * 1e6,
			PredictedUs:    pred * 1e6,
			RelativeErrP50: (pred - p50) / p50,
		}
		rep.Calibration.Points = append(rep.Calibration.Points, pt)
		fmt.Printf("  %4d KiB: measured p50 %8.1f µs, model %8.1f µs (%+.1f%%)\n",
			elemBytes>>10, pt.MeasuredP50Us, pt.PredictedUs, pt.RelativeErrP50*100)
	}
	return nil
}

// runDiskReads compares the executors over the file backend, raw and with
// one slow device.
func runDiskReads(root string, rep *diskReport, direct bool) error {
	scenarios := []struct {
		name     string
		policies []faultinject.Policy
	}{
		{"raw", nil},
		{"one-slow-disk", []faultinject.Policy{{Device: 0, Latency: 10 * time.Millisecond}}},
	}
	configs := []fanoutConfig{
		{"sequential", store.ReadOptions{Sequential: true}},
		{"fanout-c8", store.ReadOptions{Concurrency: 8}},
		{"fanout-c8-hedge", store.ReadOptions{Concurrency: 8, Hedge: store.HedgeConfig{
			Enabled:  true,
			Quantile: 0.5,
			Min:      time.Millisecond,
			Max:      2 * time.Millisecond,
		}}},
	}
	fmt.Printf("%-16s %-16s %9s %9s %9s\n", "scenario", "config", "p50 ms", "p99 ms", "speedup")
	for _, sc := range scenarios {
		st, payload, err := diskStore(root, "reads-"+sc.name, layout.FormECFRM,
			diskReadElemBytes, 4*diskReadElems, direct)
		if err != nil {
			return err
		}
		if sc.policies != nil {
			st.SetFaultInjector(faultinject.New(faultinject.Plan{Seed: 9, Policies: sc.policies}))
		}
		length := diskReadElems * diskReadElemBytes
		readOnce := func(opts store.ReadOptions, off int64) (time.Duration, error) {
			start := time.Now()
			res, err := st.ReadAtCtx(context.Background(), off, length, opts)
			elapsed := time.Since(start)
			if err != nil {
				return 0, err
			}
			if !bytes.Equal(res.Data, payload[off:off+int64(length)]) {
				return 0, fmt.Errorf("payload mismatch at offset %d", off)
			}
			return elapsed, nil
		}
		offAt := func(i int) int64 {
			return int64(((i * 8) % (4*diskReadElems - diskReadElems)) * diskReadElemBytes)
		}
		for i := 0; i < 10; i++ {
			if _, err := readOnce(store.ReadOptions{}, offAt(i)); err != nil {
				st.Close()
				return fmt.Errorf("scenario %s warmup: %w", sc.name, err)
			}
		}
		var seqP50 time.Duration
		for _, cfg := range configs {
			lats := make([]time.Duration, 0, diskReadReps)
			for i := 0; i < diskReadReps; i++ {
				d, err := readOnce(cfg.opts, offAt(i))
				if err != nil {
					st.Close()
					return fmt.Errorf("scenario %s %s: %w", sc.name, cfg.name, err)
				}
				lats = append(lats, d)
			}
			sort.Slice(lats, func(x, y int) bool { return lats[x] < lats[y] })
			p50, p99 := lats[len(lats)/2], lats[(len(lats)*99)/100]
			if cfg.opts.Sequential {
				seqP50 = p50
			}
			speedup := 1.0
			if !cfg.opts.Sequential && p50 > 0 {
				speedup = float64(seqP50) / float64(p50)
			}
			r := diskReadResult{
				Scenario:            sc.name,
				Executor:            cfg.name,
				Concurrency:         cfg.opts.Concurrency,
				Hedged:              cfg.opts.Hedge.Enabled,
				P50Ms:               float64(p50) / 1e6,
				P99Ms:               float64(p99) / 1e6,
				SpeedupVsSequential: speedup,
			}
			rep.Results = append(rep.Results, r)
			fmt.Printf("%-16s %-16s %9.2f %9.2f %8.1fx\n",
				sc.name, cfg.name, r.P50Ms, r.P99Ms, r.SpeedupVsSequential)
		}
		if err := st.Close(); err != nil {
			return err
		}
	}
	return nil
}

// runDiskBench runs the three sections over a temporary directory and
// writes the JSON report to path.
func runDiskBench(path string, direct bool) error {
	root, err := os.MkdirTemp("", "ecfrm-disk-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	rep := diskReport{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.GOMAXPROCS(0),
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		Direct:       direct,
		ReadElems:    diskReadElems,
		ReadElemSize: diskReadElemBytes,
		Reps:         diskReadReps,
	}
	fmt.Printf("file-backend disk benchmark in %s\n", root)
	if err := runDiskWrite(root, &rep, direct); err != nil {
		return err
	}
	if err := runDiskCalibration(root, &rep, direct); err != nil {
		return err
	}
	if err := runDiskReads(root, &rep, direct); err != nil {
		return err
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
