// Cluster benchmark mode: -cluster <path> measures what the network costs —
// and what hedging buys back — by running the same reads three ways and
// writing BENCH_cluster.json:
//
//   - local: one in-process store, the single-box baseline.
//   - networked: a gateway fanning cell reads over HTTP to in-process data
//     nodes (real sockets via httptest, loopback transport).
//   - networked-hedged: the same cluster with hedged reads racing parity
//     reconstruction against stragglers.
//
// Each networked configuration is then re-measured with one whole node gone,
// recording degraded-read latency and the network read amplification (cell
// bytes fetched from nodes ÷ payload bytes served) — the paper's degraded
// read cost, observed on the wire instead of in a plan.
//
// Every read is byte-verified against the original payload, so a fast-but-
// wrong path cannot post a score.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datanode"
	"repro/internal/gateway"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/rs"
	"repro/internal/store"
)

const (
	clusterElemBytes   = 4 << 10
	clusterObjectElems = 16 // 64 KiB objects
	clusterObjects     = 24
	clusterGroups      = 2
	clusterBenchReps   = 40
)

type clusterResult struct {
	Config string  `json:"config"` // local | networked | networked-hedged
	Phase  string  `json:"phase"`  // healthy | node-down
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// NetReadBytes is the cell payload fetched from data nodes during this
	// configuration's timed reads (0 for local).
	NetReadBytes int64 `json:"net_read_bytes,omitempty"`
	// NetReadAmplification is NetReadBytes ÷ payload bytes served — 1.0 when
	// every fetched cell is user data, higher when reconstruction (degraded
	// reads, hedges) pulls extra cells.
	NetReadAmplification float64 `json:"net_read_amplification,omitempty"`
}

type clusterReport struct {
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	CPUs        int             `json:"cpus"`
	Timestamp   string          `json:"timestamp"`
	Scheme      string          `json:"scheme"`
	ElemBytes   int             `json:"elem_bytes"`
	ObjectBytes int             `json:"object_bytes"`
	Objects     int             `json:"objects"`
	Nodes       int             `json:"nodes"`
	Groups      int             `json:"groups"`
	Reps        int             `json:"reps"`
	Results     []clusterResult `json:"results"`
}

// runClusterBench stands up the in-process cluster, runs every configuration
// through both phases, and writes the JSON report to path.
func runClusterBench(path string) error {
	code, err := rs.New(6, 3)
	if err != nil {
		return err
	}
	scheme, err := core.NewScheme(code, layout.FormECFRM)
	if err != nil {
		return err
	}
	nNodes := (scheme.N() + scheme.FaultTolerance() - 1) / scheme.FaultTolerance()
	if nNodes < 3 {
		nNodes = 3
	}

	reg := obs.NewRegistry()
	var nodes []*datanode.Server
	var servers []*httptest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
	}()
	urls := make([]string, nNodes)
	for i := 0; i < nNodes; i++ {
		n, err := datanode.New(datanode.Config{
			ElemSize: clusterElemBytes,
			Registry: reg.With(obs.L("component", "node"), obs.L("node", fmt.Sprint(i))),
		})
		if err != nil {
			return err
		}
		srv := httptest.NewServer(n)
		nodes = append(nodes, n)
		servers = append(servers, srv)
		urls[i] = srv.URL
	}
	gw, err := gateway.New(gateway.Config{
		Nodes:         urls,
		Groups:        clusterGroups,
		ElemSize:      clusterElemBytes,
		Registry:      reg,
		Scheme:        scheme,
		SyncWrites:    true,
		ProbeInterval: 50 * time.Millisecond,
		WAL:           store.WALConfig{FlushInterval: time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	local, err := store.New(scheme, clusterElemBytes)
	if err != nil {
		return err
	}
	defer local.Close()
	localWAL := store.NewWAL(local, store.WALConfig{FlushInterval: time.Millisecond})
	defer localWAL.Close()

	// Seed the same objects into both worlds.
	rng := rand.New(rand.NewSource(19))
	objectBytes := clusterObjectElems * clusterElemBytes
	type obj struct {
		name     string
		payload  []byte
		localOff int64
	}
	objs := make([]obj, clusterObjects)
	for i := range objs {
		o := obj{name: fmt.Sprintf("bench-%03d", i), payload: make([]byte, objectBytes)}
		rng.Read(o.payload)
		req := httptest.NewRequest(http.MethodPut, "/objects/"+o.name, bytes.NewReader(o.payload))
		rec := httptest.NewRecorder()
		gw.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			return fmt.Errorf("seed PUT %s: %d %s", o.name, rec.Code, rec.Body.String())
		}
		if o.localOff, err = localWAL.Put(context.Background(), o.payload); err != nil {
			return fmt.Errorf("seed local put: %w", err)
		}
		objs[i] = o
	}

	// The per-node read counters the remoteCell clients increment; summed
	// deltas around a timed block give that block's wire traffic.
	gwReg := reg.With(obs.L("component", "gateway"))
	readCounters := make([]*obs.Counter, nNodes)
	for i := range readCounters {
		readCounters[i] = gwReg.Counter("ecfrm_gateway_node_read_bytes_total", "", obs.L("node", fmt.Sprint(i)))
	}
	netReadBytes := func() int64 {
		var sum int64
		for _, c := range readCounters {
			sum += c.Value()
		}
		return sum
	}

	readLocal := func(o obj) (time.Duration, error) {
		start := time.Now()
		res, err := local.ReadAt(o.localOff, len(o.payload))
		elapsed := time.Since(start)
		if err != nil {
			return 0, err
		}
		if !bytes.Equal(res.Data, o.payload) {
			return 0, fmt.Errorf("local read of %s returned wrong bytes", o.name)
		}
		return elapsed, nil
	}
	readGateway := func(o obj, query string) (time.Duration, error) {
		req := httptest.NewRequest(http.MethodGet, "/objects/"+o.name+query, nil)
		rec := httptest.NewRecorder()
		start := time.Now()
		gw.ServeHTTP(rec, req)
		elapsed := time.Since(start)
		if rec.Code != http.StatusOK {
			return 0, fmt.Errorf("GET %s%s: %d %s", o.name, query, rec.Code, rec.Body.String())
		}
		if !bytes.Equal(rec.Body.Bytes(), o.payload) {
			return 0, fmt.Errorf("GET %s%s returned wrong bytes", o.name, query)
		}
		return elapsed, nil
	}

	rep := clusterReport{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.GOMAXPROCS(0),
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Scheme:      scheme.Name(),
		ElemBytes:   clusterElemBytes,
		ObjectBytes: objectBytes,
		Objects:     clusterObjects,
		Nodes:       nNodes,
		Groups:      clusterGroups,
		Reps:        clusterBenchReps,
	}
	fmt.Printf("cluster read sweep: %s, %d nodes, %d groups, %d×%dKiB objects, %d reps\n",
		scheme.Name(), nNodes, clusterGroups, clusterObjects, objectBytes>>10, clusterBenchReps)
	fmt.Printf("%-18s %-10s %9s %9s %14s %7s\n",
		"config", "phase", "p50 ms", "p99 ms", "net bytes", "amp")

	measure := func(config, phase string, read func(obj) (time.Duration, error), wired bool) error {
		// Warmup outside the timed window.
		for i := 0; i < 5; i++ {
			if _, err := read(objs[i%len(objs)]); err != nil {
				return fmt.Errorf("%s/%s warmup: %w", config, phase, err)
			}
		}
		before := netReadBytes()
		lats := make([]time.Duration, 0, clusterBenchReps)
		for i := 0; i < clusterBenchReps; i++ {
			d, err := read(objs[(i*7)%len(objs)])
			if err != nil {
				return fmt.Errorf("%s/%s: %w", config, phase, err)
			}
			lats = append(lats, d)
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		r := clusterResult{
			Config: config,
			Phase:  phase,
			P50Ms:  float64(lats[len(lats)/2]) / 1e6,
			P99Ms:  float64(lats[(len(lats)*99)/100]) / 1e6,
		}
		if wired {
			r.NetReadBytes = netReadBytes() - before
			r.NetReadAmplification = float64(r.NetReadBytes) / float64(clusterBenchReps*objectBytes)
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-18s %-10s %9.3f %9.3f %14d %7.2f\n",
			r.Config, r.Phase, r.P50Ms, r.P99Ms, r.NetReadBytes, r.NetReadAmplification)
		return nil
	}

	if err := measure("local", "healthy", readLocal, false); err != nil {
		return err
	}
	if err := measure("networked", "healthy",
		func(o obj) (time.Duration, error) { return readGateway(o, "") }, true); err != nil {
		return err
	}
	if err := measure("networked-hedged", "healthy",
		func(o obj) (time.Duration, error) { return readGateway(o, "?hedge=1") }, true); err != nil {
		return err
	}

	// Kill one whole node: reads must keep succeeding byte-identically,
	// reconstructing the lost cells from the survivors — the degraded rows
	// record what that reconstruction costs on the wire.
	servers[1].Close()
	if err := measure("networked", "node-down",
		func(o obj) (time.Duration, error) { return readGateway(o, "") }, true); err != nil {
		return err
	}
	if err := measure("networked-hedged", "node-down",
		func(o obj) (time.Duration, error) { return readGateway(o, "?hedge=1") }, true); err != nil {
		return err
	}

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}
