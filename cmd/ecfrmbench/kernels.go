// Kernel microbenchmark mode: -kernels <path> measures the bulk GF(2^8)
// multiply-accumulate throughput (the loop both encode and reconstruct spend
// their time in) for the fast kernel path and the byte-wise reference across
// shard sizes, and writes the results as JSON so later PRs can track the
// perf trajectory against this file.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/gf"
)

// kernelShardSizes spans the cache regimes from L1-resident to streaming.
var kernelShardSizes = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// kernelSources is the number of data shards combined per parity/decode
// element, matching the paper's RS(6,3) configuration.
const kernelSources = 6

type kernelResult struct {
	Kernel     string  `json:"kernel"` // "encode" or "reconstruct"
	Path       string  `json:"path"`   // "fast" or "ref"
	ShardBytes int     `json:"shard_bytes"`
	Sources    int     `json:"sources"`
	MBps       float64 `json:"mbps"`
}

type kernelReport struct {
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	SIMD      bool           `json:"simd"`
	Timestamp string         `json:"timestamp"`
	Results   []kernelResult `json:"results"`
}

// measureDot reports the MB/s of one dot-product pass over k sources of the
// given size: three timed rounds, best round wins (the usual defence against
// scheduler noise on shared machines).
func measureDot(k, size int, seed int64, dot func(dst, coeffs []byte, vecs [][]byte)) float64 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]byte, k)
	for i := range vecs {
		vecs[i] = make([]byte, size)
		rng.Read(vecs[i])
	}
	coeffs := make([]byte, k)
	for i := range coeffs {
		coeffs[i] = byte(2 + rng.Intn(254)) // skip the 0/1 fast paths
	}
	dst := make([]byte, size)

	// Calibrate an iteration count worth ~40ms, then take the best of 3.
	dot(dst, coeffs, vecs)
	start := time.Now()
	dot(dst, coeffs, vecs)
	per := time.Since(start)
	iters := int(40 * time.Millisecond / (per + 1))
	if iters < 1 {
		iters = 1
	}
	best := 0.0
	for round := 0; round < 3; round++ {
		start = time.Now()
		for i := 0; i < iters; i++ {
			dot(dst, coeffs, vecs)
		}
		elapsed := time.Since(start).Seconds()
		mbps := float64(k*size*iters) / elapsed / 1e6
		if mbps > best {
			best = mbps
		}
	}
	return best
}

// runKernelBench measures encode- and reconstruct-style multiply-accumulate
// (same kernel, distinct coefficient draws) for both paths and writes the
// JSON report to path.
func runKernelBench(path string) error {
	rep := kernelReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		SIMD:      gf.SIMDEnabled(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	paths := []struct {
		name string
		dot  func(dst, coeffs []byte, vecs [][]byte)
	}{
		{"fast", gf.DotSlice},
		{"ref", gf.DotSliceRef},
	}
	fmt.Println("GF(2^8) kernel throughput (MB/s of source bytes processed)")
	fmt.Printf("%-12s %-6s %10s %12s\n", "kernel", "path", "shard", "MB/s")
	for _, kind := range []struct {
		name string
		seed int64
	}{{"encode", 11}, {"reconstruct", 23}} {
		for _, size := range kernelShardSizes {
			for _, p := range paths {
				mbps := measureDot(kernelSources, size, kind.seed, p.dot)
				rep.Results = append(rep.Results, kernelResult{
					Kernel:     kind.name,
					Path:       p.name,
					ShardBytes: size,
					Sources:    kernelSources,
					MBps:       mbps,
				})
				fmt.Printf("%-12s %-6s %9dK %12.1f\n", kind.name, p.name, size>>10, mbps)
			}
		}
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}
