// Fan-out read benchmark mode: -fanout <path> measures the ISSUE's headline
// claim — under a fault plan that slows one device, a 64-cell normal read
// through the parallel fan-out executor completes in roughly the *max* of the
// per-device times instead of their *sum* — and writes BENCH_fanout.json.
//
// Three scenarios isolate the three mechanisms:
//
//   - one-slow-disk/standard: the slow device's cells sit at consecutive
//     on-disk offsets, so coalescing alone collapses ~11 cell reads (11 fault
//     draws) into one run (one draw).
//   - one-slow-disk/ecfrm: the rotated layout scatters the slow device's
//     cells into many short runs; hedged reads rebuild each straggling run
//     from parity-equivalent sources after ~1ms instead of waiting 10ms.
//   - uniform-2ms: every device is equally slow; the win is pure cross-device
//     parallelism (max of 9 queues vs the sum of 64 cells).
//
// Every read is byte-verified against the original payload, so a fast-but-
// wrong executor cannot post a score.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/rs"
	"repro/internal/store"
	"repro/internal/workload"
)

const (
	// fanoutElemBytes keeps the read I/O-shaped rather than decode-shaped:
	// with 4 KiB cells the injected device latency dominates, which is the
	// regime the executor exists for.
	fanoutElemBytes = 4 << 10
	// fanoutReadElems is the ISSUE's 64-cell normal read.
	fanoutReadElems = 64
	// fanoutBenchReps per configuration; P50 is the headline number.
	fanoutBenchReps = 15
)

type fanoutResult struct {
	Scenario    string  `json:"scenario"`
	Skew        string  `json:"skew,omitempty"` // request distribution, when not uniform
	Executor    string  `json:"executor"`       // "sequential" or "fanout"
	Concurrency int     `json:"concurrency,omitempty"`
	Hedged      bool    `json:"hedged,omitempty"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// SpeedupVsSequential is this configuration's P50 speedup over the
	// sequential executor in the same scenario (1.0 for the baseline row).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	HedgeFired          int64   `json:"hedge_fired,omitempty"`
	HedgeWon            int64   `json:"hedge_won,omitempty"`
}

type fanoutReport struct {
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	CPUs      int            `json:"cpus"`
	Timestamp string         `json:"timestamp"`
	Scheme    string         `json:"scheme"`
	ElemBytes int            `json:"elem_bytes"`
	ReadElems int            `json:"read_elems"`
	Reps      int            `json:"reps"`
	Results   []fanoutResult `json:"results"`
}

// fanoutConfig is one timed executor configuration within a scenario.
type fanoutConfig struct {
	name string
	opts store.ReadOptions
}

func fanoutConfigs() []fanoutConfig {
	cfgs := []fanoutConfig{{"sequential", store.ReadOptions{Sequential: true}}}
	for _, c := range []int{1, 2, 4, 8} {
		cfgs = append(cfgs, fanoutConfig{
			fmt.Sprintf("fanout-c%d", c),
			store.ReadOptions{Concurrency: c},
		})
	}
	// The hedged configuration pins Max to 2ms so a straggler is re-issued
	// promptly even before the latency ring has quantile coverage; warmup
	// reads below still populate the ring so the quantile path is exercised.
	cfgs = append(cfgs, fanoutConfig{
		"fanout-c8-hedge",
		store.ReadOptions{Concurrency: 8, Hedge: store.HedgeConfig{
			Enabled:  true,
			Quantile: 0.5,
			Min:      time.Millisecond,
			Max:      2 * time.Millisecond,
		}},
	})
	return cfgs
}

// fanoutScenario builds a fresh sealed store for one scenario.
type fanoutScenario struct {
	name     string
	form     layout.Form
	policies []faultinject.Policy
	failDisk int // disk to fail before reading, -1 for none
	// skew, when non-nil, draws read offsets from the skewed workload
	// generator instead of the rotating uniform pattern; a diurnal period in
	// it additionally modulates per-rep burst concurrency.
	skew *workload.SkewConfig
}

func fanoutScenarios() []fanoutScenario {
	slow := []faultinject.Policy{{Device: 0, Latency: 10 * time.Millisecond}}
	uniform := make([]faultinject.Policy, 0, 9)
	for d := 0; d < 9; d++ {
		uniform = append(uniform, faultinject.Policy{Device: d, Latency: 2 * time.Millisecond})
	}
	return []fanoutScenario{
		{"one-slow-disk/standard", layout.FormStandard, slow, -1, nil},
		{"one-slow-disk/ecfrm", layout.FormECFRM, slow, -1, nil},
		{"uniform-2ms/ecfrm", layout.FormECFRM, uniform, -1, nil},
		{"degraded-uniform-2ms/ecfrm", layout.FormECFRM, uniform, 0, nil},
		// Skewed traffic: the hot head concentrates requests on few stripes,
		// so the slow device's queue collides with itself — the regime where
		// hedging and cross-device parallelism earn their keep.
		{"skew-zipf-diurnal/ecfrm", layout.FormECFRM, slow, -1,
			&workload.SkewConfig{Kind: workload.SkewZipf, DiurnalPeriod: fanoutBenchReps}},
		{"skew-hotspot/ecfrm", layout.FormECFRM, slow, -1,
			&workload.SkewConfig{Kind: workload.SkewHotspot}},
	}
}

// runFanoutScenario measures every configuration over one store and appends
// the results to rep.
func runFanoutScenario(sc fanoutScenario, rep *fanoutReport) error {
	code, err := rs.New(6, 3)
	if err != nil {
		return err
	}
	scheme, err := core.NewScheme(code, sc.form)
	if err != nil {
		return err
	}
	if rep.Scheme == "" {
		rep.Scheme = scheme.Name()
	}
	st, err := store.New(scheme, fanoutElemBytes)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	st.SetMetrics(store.NewMetrics(reg, scheme.N()))

	// Seal a payload comfortably larger than the widest read so the offset
	// can rotate between reps.
	payloadElems := 4 * fanoutReadElems
	payload := make([]byte, payloadElems*fanoutElemBytes)
	rand.New(rand.NewSource(42)).Read(payload)
	if err := st.Append(payload); err != nil {
		return err
	}
	if err := st.Flush(); err != nil {
		return err
	}

	// Install faults only after sealing: the write path is not under test.
	st.SetFaultInjector(faultinject.New(faultinject.Plan{Seed: 9, Policies: sc.policies}))
	if sc.failDisk >= 0 && !st.FailDiskWithinTolerance(sc.failDisk) {
		return fmt.Errorf("scenario %s: cannot fail disk %d", sc.name, sc.failDisk)
	}

	// The hedge counters live in the scenario's registry; re-fetching them by
	// (name, labels) yields the same series the store increments.
	fired := reg.Counter("ecfrm_store_hedge_total", "", obs.L("outcome", "fired"))
	won := reg.Counter("ecfrm_store_hedge_total", "", obs.L("outcome", "won"))

	length := fanoutReadElems * fanoutElemBytes
	readOnce := func(opts store.ReadOptions, off int64) (time.Duration, error) {
		start := time.Now()
		res, err := st.ReadAtCtx(context.Background(), off, length, opts)
		elapsed := time.Since(start)
		if err != nil {
			return 0, err
		}
		if !bytes.Equal(res.Data, payload[off:off+int64(length)]) {
			return 0, fmt.Errorf("payload mismatch at offset %d", off)
		}
		return elapsed, nil
	}
	offAt := func(i int) int64 {
		return int64(((i * 8) % (payloadElems - fanoutReadElems)) * fanoutElemBytes)
	}

	// Skewed scenarios draw offsets from the workload generator instead of
	// the rotating pattern; the diurnal intensity, when configured, widens
	// each rep into a burst of concurrent reads (peak-hour traffic).
	var skewGen *workload.SkewedGenerator
	if sc.skew != nil {
		skewGen = workload.MustSkewed(workload.Config{
			TotalElements: payloadElems,
			Disks:         scheme.N(),
			MaxSize:       fanoutReadElems,
			Seed:          11,
		}, *sc.skew)
	}
	skewOff := func() int64 {
		s := skewGen.Next().Start
		if s > payloadElems-fanoutReadElems {
			s = payloadElems - fanoutReadElems
		}
		return int64(s * fanoutElemBytes)
	}
	// runRep issues one rep's reads for a configuration and returns their
	// latencies: a single read normally, a skew-driven burst when the
	// scenario has a diurnal envelope.
	runRep := func(opts store.ReadOptions, i int) ([]time.Duration, error) {
		if skewGen == nil {
			d, err := readOnce(opts, offAt(i))
			if err != nil {
				return nil, err
			}
			return []time.Duration{d}, nil
		}
		burst := 1
		if sc.skew.DiurnalPeriod > 0 {
			burst = 1 + int(skewGen.Intensity()*3+0.5)
		}
		offs := make([]int64, burst)
		for j := range offs {
			offs[j] = skewOff()
		}
		lats := make([]time.Duration, burst)
		errs := make([]error, burst)
		var wg sync.WaitGroup
		for j, off := range offs {
			wg.Add(1)
			go func(j int, off int64) {
				defer wg.Done()
				lats[j], errs[j] = readOnce(opts, off)
			}(j, off)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return lats, nil
	}

	// Warmup: populate buffer pools and the hedge latency ring before any
	// configuration is timed.
	for i := 0; i < 10; i++ {
		if _, err := readOnce(store.ReadOptions{}, offAt(i)); err != nil {
			return fmt.Errorf("scenario %s warmup: %w", sc.name, err)
		}
	}

	var seqP50 time.Duration
	for _, cfg := range fanoutConfigs() {
		firedBefore, wonBefore := fired.Value(), won.Value()
		lats := make([]time.Duration, 0, fanoutBenchReps)
		for i := 0; i < fanoutBenchReps; i++ {
			ds, err := runRep(cfg.opts, i)
			if err != nil {
				return fmt.Errorf("scenario %s %s: %w", sc.name, cfg.name, err)
			}
			lats = append(lats, ds...)
		}
		sort.Slice(lats, func(x, y int) bool { return lats[x] < lats[y] })
		p50 := lats[len(lats)/2]
		p99 := lats[(len(lats)*99)/100]
		if cfg.opts.Sequential {
			seqP50 = p50
		}
		speedup := 1.0
		if !cfg.opts.Sequential && p50 > 0 {
			speedup = float64(seqP50) / float64(p50)
		}
		skewName := ""
		if sc.skew != nil {
			skewName = sc.skew.Kind.String()
		}
		r := fanoutResult{
			Scenario:            sc.name,
			Skew:                skewName,
			Executor:            "fanout",
			Concurrency:         cfg.opts.Concurrency,
			Hedged:              cfg.opts.Hedge.Enabled,
			P50Ms:               float64(p50) / 1e6,
			P99Ms:               float64(p99) / 1e6,
			SpeedupVsSequential: speedup,
			HedgeFired:          fired.Value() - firedBefore,
			HedgeWon:            won.Value() - wonBefore,
		}
		if cfg.opts.Sequential {
			r.Executor = "sequential"
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-28s %-16s %9.2f %9.2f %8.1fx %6d %6d\n",
			sc.name, cfg.name, r.P50Ms, r.P99Ms, r.SpeedupVsSequential, r.HedgeFired, r.HedgeWon)
	}
	return nil
}

// runFanoutBench runs every scenario and writes the JSON report to path.
func runFanoutBench(path string) error {
	rep := fanoutReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		ElemBytes: fanoutElemBytes,
		ReadElems: fanoutReadElems,
		Reps:      fanoutBenchReps,
	}
	fmt.Printf("fan-out read sweep: %d-cell reads, %d KiB elements, %d reps, %d CPU(s)\n",
		fanoutReadElems, fanoutElemBytes>>10, fanoutBenchReps, rep.CPUs)
	fmt.Printf("%-28s %-16s %9s %9s %9s %6s %6s\n",
		"scenario", "config", "p50 ms", "p99 ms", "speedup", "hedged", "won")
	for _, sc := range fanoutScenarios() {
		if err := runFanoutScenario(sc, &rep); err != nil {
			return err
		}
	}

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}
