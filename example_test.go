package ecfrm_test

import (
	"fmt"
	"log"

	ecfrm "repro"
)

// ExampleNewScheme shows the paper's layout transformation: the same
// LRC(6,2,2) candidate deployed standard vs EC-FRM, and how an 8-element
// read's worst disk load drops (Figure 3 vs Figure 7a).
func ExampleNewScheme() {
	code, err := ecfrm.NewLRC(6, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, form := range []ecfrm.Form{ecfrm.FormStandard, ecfrm.FormECFRM} {
		scheme, err := ecfrm.NewScheme(code, form)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := scheme.PlanNormalRead(0, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: max disk load %d over %d disks\n",
			scheme.Name(), plan.MaxLoad(), plan.ContributingDisks())
	}
	// Output:
	// LRC(6,2,2): max disk load 2 over 6 disks
	// EC-FRM-LRC(6,2,2): max disk load 1 over 8 disks
}

// ExampleNewStore walks the store through a disk failure: data written once
// reads back identically with a disk gone, at a small recovery cost.
func ExampleNewStore() {
	code, _ := ecfrm.NewRS(6, 3)
	scheme, _ := ecfrm.NewScheme(code, ecfrm.FormECFRM)
	st, _ := ecfrm.NewStore(scheme, 16)

	payload := []byte("erasure coding keeps this safe across disk failures!")
	st.Append(payload)
	st.Flush()

	st.FailDisk(2)
	res, err := st.ReadAt(0, len(payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", res.Data)
	fmt.Printf("read cost with a failed disk: %.2f reads/element\n", res.Plan.Cost())
	// Output:
	// erasure coding keeps this safe across disk failures!
	// read cost with a failed disk: 1.50 reads/element
}

// ExampleScheme_FaultTolerance shows the framework inheriting the candidate
// code's guarantees (§IV-C, §V-B).
func ExampleScheme_FaultTolerance() {
	code, _ := ecfrm.NewLRC(6, 2, 2)
	std, _ := ecfrm.NewScheme(code, ecfrm.FormStandard)
	frm, _ := ecfrm.NewScheme(code, ecfrm.FormECFRM)
	fmt.Printf("standard: tolerates %d failures at %.3fx overhead\n",
		std.FaultTolerance(), std.StorageOverhead())
	fmt.Printf("EC-FRM:   tolerates %d failures at %.3fx overhead\n",
		frm.FaultTolerance(), frm.StorageOverhead())
	// Output:
	// standard: tolerates 3 failures at 1.667x overhead
	// EC-FRM:   tolerates 3 failures at 1.667x overhead
}
