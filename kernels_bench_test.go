package ecfrm

// Benchmarks for the fast GF(2^8) kernels (SIMD nibble-table shuffle where
// the CPU supports it, word-parallel tables otherwise) against the byte-wise
// reference — the acceptance gate for the bulk-arithmetic rewrite. The
// encode kernel is the k-source dot product behind parity generation; the
// reconstruct kernel is the same multiply-accumulate applied with decode
// coefficients. MB/s here is bytes *processed* (sources × shard size) per
// second, matching how storage systems quote codec throughput.
//
// Run with: go test -bench 'Encode|Reconstruct' -benchmem

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// kernelShardSizes spans the cache regimes: L1-resident, L2, and streaming.
var kernelShardSizes = []int{4 << 10, 64 << 10, 1 << 20}

func randShards(rng *rand.Rand, k, size int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func randCoeffs(rng *rand.Rand, k int) []byte {
	out := make([]byte, k)
	for i := range out {
		out[i] = byte(2 + rng.Intn(254)) // skip the 0/1 fast paths
	}
	return out
}

// benchDot measures one parity element's multiply-accumulate over k sources.
func benchDot(b *testing.B, k, size int, dot func(dst, coeffs []byte, vecs [][]byte)) {
	rng := rand.New(rand.NewSource(int64(k*size) | 1))
	vecs := randShards(rng, k, size)
	coeffs := randCoeffs(rng, k)
	dst := make([]byte, size)
	b.SetBytes(int64(k * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dot(dst, coeffs, vecs)
	}
}

// BenchmarkEncodeKernel is the GF multiply-accumulate behind parity encode:
// the fast DotSlice path vs the byte-wise reference, k=6 sources.
func BenchmarkEncodeKernel(b *testing.B) {
	const k = 6
	for _, size := range kernelShardSizes {
		b.Run(fmt.Sprintf("fast/%dKiB", size>>10), func(b *testing.B) {
			benchDot(b, k, size, gf.DotSlice)
		})
		b.Run(fmt.Sprintf("ref/%dKiB", size>>10), func(b *testing.B) {
			benchDot(b, k, size, gf.DotSliceRef)
		})
	}
}

// BenchmarkReconstructKernel is the decode-side multiply-accumulate: k
// survivors combined with decode coefficients into one lost shard.
func BenchmarkReconstructKernel(b *testing.B) {
	const k = 6
	size := 64 << 10
	b.Run("fast/64KiB", func(b *testing.B) { benchDot(b, k, size, gf.DotSlice) })
	b.Run("ref/64KiB", func(b *testing.B) { benchDot(b, k, size, gf.DotSliceRef) })
}

// BenchmarkEncodeMulAdd isolates the single-source multiply-accumulate.
func BenchmarkEncodeMulAdd(b *testing.B) {
	size := 64 << 10
	rng := rand.New(rand.NewSource(11))
	src := make([]byte, size)
	rng.Read(src)
	dst := make([]byte, size)
	b.Run("fast/64KiB", func(b *testing.B) {
		b.SetBytes(int64(size))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gf.MulAddSlice(0x53, dst, src)
		}
	})
	b.Run("ref/64KiB", func(b *testing.B) {
		b.SetBytes(int64(size))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gf.MulAddSliceRef(0x53, dst, src)
		}
	})
}

// BenchmarkEncodeXOR isolates the add path (parity of XOR-based codes).
func BenchmarkEncodeXOR(b *testing.B) {
	size := 64 << 10
	rng := rand.New(rand.NewSource(12))
	src := make([]byte, size)
	rng.Read(src)
	dst := make([]byte, size)
	b.Run("fast/64KiB", func(b *testing.B) {
		b.SetBytes(int64(size))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gf.AddSlice(dst, src)
		}
	})
	b.Run("ref/64KiB", func(b *testing.B) {
		b.SetBytes(int64(size))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gf.AddSliceRef(dst, src)
		}
	})
}
