// Package ecfrm is a Go reproduction of "EC-FRM: An Erasure Coding Framework
// to Speed Up Reads for Erasure Coded Cloud Storage Systems" (Fu, Shu, Shen;
// ICPP 2015).
//
// EC-FRM takes an existing one-row ("candidate") erasure code — Reed-Solomon
// (k,m) or Azure-style LRC (k,l,m) — and re-deploys its data and parity
// elements over a multi-row stripe so that sequential user data spreads
// across ALL disks, not just the data disks. Normal reads (no failures) and
// degraded reads (reads under disk failure) then bottleneck on a less-loaded
// disk, improving read speed while preserving the candidate code's fault
// tolerance, storage overhead, and applicability to arbitrary disk counts.
//
// The package exposes:
//
//   - candidate codes: NewRS, NewLRC;
//   - schemes (code × layout): NewScheme with FormStandard / FormRotated /
//     FormECFRM, giving the paper's RS, R-RS, EC-FRM-RS, LRC, R-LRC,
//     EC-FRM-LRC variants;
//   - stripe operations: EncodeStripe, ReconstructStripe, RebuildData;
//   - read planning: PlanNormalRead, PlanDegradedRead with per-disk load
//     accounting;
//   - a blob store over simulated devices (NewStore) and a seeded disk-array
//     timing model (NewDiskArray) for running the paper's experiments.
//
// A minimal normal-read flow:
//
//	code, _ := ecfrm.NewLRC(6, 2, 2)
//	scheme, _ := ecfrm.NewScheme(code, ecfrm.FormECFRM)
//	st, _ := ecfrm.NewStore(scheme, 1<<20)
//	st.Append(payload)
//	st.Flush()
//	res, _ := st.ReadAt(0, 4<<20)   // res.Data, res.Plan.MaxLoad(), ...
package ecfrm

import (
	"repro/internal/cluster"
	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/store"
	"repro/internal/workload"
)

// Code is a systematic one-row candidate erasure code (Reed-Solomon or LRC).
type Code = codes.Code

// Form selects a stripe layout: the candidate code's native layout, the
// rotated-stripes baseline, or the paper's EC-FRM transformation.
type Form = layout.Form

// The three layout forms the paper evaluates.
const (
	FormStandard = layout.FormStandard
	FormRotated  = layout.FormRotated
	FormECFRM    = layout.FormECFRM
)

// Scheme is a candidate code deployed under a layout form; it encodes
// stripes, reconstructs lost cells, and plans reads.
type Scheme = core.Scheme

// Plan is a planned read: deduplicated element accesses plus per-disk loads.
type Plan = core.Plan

// Access is one planned physical element read.
type Access = core.Access

// Pos identifies a cell within a stripe (row, column).
type Pos = layout.Pos

// RecoveryPolicy selects how degraded reads choose recovery sets; see
// PolicyMinCost and PolicyBalance.
type RecoveryPolicy = core.RecoveryPolicy

// Recovery policies for degraded-read planning.
const (
	// PolicyMinCost fetches the fewest extra elements (paper-faithful).
	PolicyMinCost = core.PolicyMinCost
	// PolicyBalance minimizes the most-loaded disk instead.
	PolicyBalance = core.PolicyBalance
)

// Store is an append-only erasure-coded blob store over simulated devices.
type Store = store.Store

// ReadResult is a store read's payload plus the plan that produced it.
type ReadResult = store.ReadResult

// DiskConfig models one disk's timing (positioning, bandwidth, jitter).
type DiskConfig = disksim.Config

// DiskArray simulates an array of identical disks for request timing.
type DiskArray = disksim.Array

// ReadTrial is one randomized request of the paper's read protocol.
type ReadTrial = workload.ReadTrial

// WorkloadConfig bounds randomized trial generation.
type WorkloadConfig = workload.Config

// WorkloadGenerator produces seeded, reproducible trial sequences.
type WorkloadGenerator = workload.Generator

// NewRS constructs the Reed-Solomon candidate code RS(k,m): k data and m
// parity elements per row, tolerating any m erasures (MDS).
func NewRS(k, m int) (Code, error) { return rs.New(k, m) }

// NewLRC constructs the Azure-style candidate code LRC(k,l,m): k data
// elements in l local groups with one XOR parity each, plus m global
// parities; tolerates any m+1 erasures and repairs single data elements with
// k/l reads.
func NewLRC(k, l, m int) (Code, error) { return lrc.New(k, l, m) }

// NewScheme deploys a candidate code under the given layout form.
func NewScheme(code Code, form Form) (*Scheme, error) {
	return core.NewScheme(code, form)
}

// NewStore creates an erasure-coded blob store using scheme with
// elemSize-byte elements, backed by in-memory devices with I/O accounting.
func NewStore(scheme *Scheme, elemSize int) (*Store, error) {
	return store.New(scheme, elemSize)
}

// DefaultDiskConfig returns the 10K-rpm SAS drive profile used to calibrate
// the paper's testbed reproduction.
func DefaultDiskConfig() DiskConfig { return disksim.DefaultConfig() }

// NewDiskArray creates a seeded simulated array of n identical disks.
func NewDiskArray(n int, cfg DiskConfig, seed int64) (*DiskArray, error) {
	return disksim.NewArray(n, cfg, seed)
}

// SpeedMBps converts a payload size and service time into the paper's MB/s
// read-speed metric.
func SpeedMBps(payloadBytes int, t interface{ Seconds() float64 }) float64 {
	return float64(payloadBytes) / 1e6 / t.Seconds()
}

// NewWorkload creates a seeded generator for the paper's randomized read
// protocol (uniform start, size 1-20 elements, uniform failed disk).
func NewWorkload(cfg WorkloadConfig) (*WorkloadGenerator, error) {
	return workload.NewGenerator(cfg)
}

// Cluster simulates a scheme deployed across single-disk storage nodes with
// node and client network links (see internal/cluster).
type Cluster = cluster.Cluster

// ClusterConfig describes the cluster fabric (disk model + link bandwidths).
type ClusterConfig = cluster.Config

// ClusterResult is one simulated cluster read outcome.
type ClusterResult = cluster.Result

// DefaultClusterConfig models the paper's inner-enterprise regime: 10 GbE
// links that comfortably exceed single-disk throughput.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// NewCluster deploys a scheme across simulated storage nodes.
func NewCluster(scheme *Scheme, cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(scheme, cfg)
}
