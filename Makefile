# Developer entry points. `make ci` is the gate every change should pass:
# vet, the full test suite under the race detector, and a short benchmark
# smoke run proving the kernel and pooled paths still execute.

GO ?= go

.PHONY: all build test ci vet race bench-smoke bench kernels-json fuzz-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A fast benchmark pass (one short iteration per benchmark) that catches
# panics/regressions in the bench harnesses without waiting for full timings.
bench-smoke:
	$(GO) test -run NONE -bench 'Encode|Reconstruct' -benchtime 1x -benchmem ./...

# The real kernel/throughput numbers used in acceptance checks.
bench:
	$(GO) test -run NONE -bench 'Encode|Reconstruct' -benchmem .

# Machine-readable kernel throughput report (BENCH_kernels.json).
kernels-json:
	$(GO) run ./cmd/ecfrmbench -kernels BENCH_kernels.json

# A short fuzz run over the GF kernel equivalence target.
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzKernelEquivalence -fuzztime 10s ./internal/gf

ci: vet race bench-smoke
