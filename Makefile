# Developer entry points. `make ci` is the gate every change should pass:
# vet, the full test suite under the race detector, and a short benchmark
# smoke run proving the kernel and pooled paths still execute.

GO ?= go

.PHONY: all build test ci vet race race-io bench-smoke bench kernels-json kernels16-json widestripe readpath-smoke readpath-json fanout-json fuzz-smoke fuzz16-smoke chaos obs-smoke fanout-smoke writepath-smoke writepath-json disk-smoke disk-json repair-smoke repair-chaos repair-json cluster-smoke cluster-json

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The concurrency-heavy packages under the race detector: the sharded object
# server, the store's reader/mutator paths, the streaming pipeline, and the
# metrics registry every scrape races against.
race-io:
	$(GO) test -race ./internal/httpd/... ./internal/store/... ./internal/shardio/... ./internal/obs/... ./internal/gateway/... ./internal/datanode/...

# A fast benchmark pass (one short iteration per benchmark) that catches
# panics/regressions in the bench harnesses without waiting for full timings.
bench-smoke:
	$(GO) test -run NONE -bench 'Encode|Reconstruct' -benchtime 1x -benchmem ./...

# The real kernel/throughput numbers used in acceptance checks.
bench:
	$(GO) test -run NONE -bench 'Encode|Reconstruct' -benchmem .

# Machine-readable kernel throughput report (BENCH_kernels.json).
kernels-json:
	$(GO) run ./cmd/ecfrmbench -kernels BENCH_kernels.json

# Machine-readable GF(2^16) kernel throughput report (BENCH_kernels16.json).
# The ISSUE's acceptance bar is a >=5x SIMD-over-reference speedup on the
# multiply-accumulate path; the report carries the geometric mean.
kernels16-json:
	$(GO) run ./cmd/ecfrmbench -kernels16 BENCH_kernels16.json

# The wide-stripe acceptance sweep: (k=64, m=4) RS/LRC/CRS over GF(2^16)
# through the full store — seal, clean reads, max-tolerated-failure degraded
# reads, and whole-disk repair, every read byte-verified.
widestripe:
	$(GO) run ./cmd/ecfrmbench -widestripe /tmp/ecfrm-widestripe.json

# A small streaming-vs-buffered read-path run that catches pipeline
# regressions without the full payload; the JSON goes to a throwaway path.
readpath-smoke:
	$(GO) run ./cmd/ecfrmbench -readpath /tmp/ecfrm-readpath-smoke.json -readpath-bytes 16777216

# The committed read-path numbers (BENCH_readpath.json): 1 GiB payload so the
# buffered baseline pays its real O(file) allocation cost.
readpath-json:
	$(GO) run ./cmd/ecfrmbench -readpath BENCH_readpath.json -readpath-bytes 1073741824

# End-to-end observability check against a real daemon: start ecfrmd, PUT and
# GET an object over HTTP, and assert /metrics scrapes cleanly with the
# expected series present (per-disk reads, max-load histogram, cache counters).
obs-smoke:
	./scripts/obs-smoke.sh

# End-to-end fan-out read check against a real daemon under a jittered
# slow-disk fault plan: hedged fan-out GETs must beat sequential GETs on
# total and worst-case latency, and the hedge counters must move.
fanout-smoke:
	./scripts/fanout-smoke.sh

# The committed fan-out executor numbers (BENCH_fanout.json): sequential vs
# fan-out vs hedged across the slow-disk and uniform-latency scenarios.
fanout-json:
	$(GO) run ./cmd/ecfrmbench -fanout BENCH_fanout.json

# End-to-end write-path check against a real daemon under a jittered fault
# plan: concurrent small PUTs must pack into fewer stripes than objects, every
# object must read back byte-identical, scrub must come back clean, and the
# WAL metric families must move.
writepath-smoke:
	./scripts/writepath-smoke.sh

# The committed write-path numbers (BENCH_writepath.json): per-object seals vs
# group-commit WAL packing, and parity-delta vs full-stripe re-encode updates.
writepath-json:
	$(GO) run ./cmd/ecfrmbench -writepath BENCH_writepath.json

# End-to-end crash-consistency check of the file backend against a real
# daemon: concurrent PUTs, SIGKILL, restart on the same data directory —
# every acked stripe must survive, scrub must come back clean, and the
# per-device submission-queue metrics must be live.
disk-smoke:
	./scripts/disk-smoke.sh

# The committed file-backend numbers (BENCH_disk.json): streaming write
# throughput under fsync barriers, the disksim calibration fit with its
# error bound, and sequential vs fan-out vs hedged reads on real files.
disk-json:
	$(GO) run ./cmd/ecfrmbench -disk BENCH_disk.json

# End-to-end self-healing check against a real daemon: PUT objects, zero one
# device's data file under the live process, and require the repair
# scheduler's error detector to fail-stop and rebuild the disk on its own —
# byte-identical reads, clean scrub, persisted scrub cursor, live MTTR and
# repair-bytes metrics, and a runtime rate retune over /repair/.
repair-smoke:
	./scripts/repair-smoke.sh

# The repair acceptance suite under the race detector: kill a disk mid-
# traffic with a seeded fault plan and assert detection, MTTR, foreground
# p99, and byte-identical recovery from a live /metrics scrape. Two fixed
# seeds plus a time-derived one (rerun failures with CHAOS_SEED=<seed>).
repair-chaos:
	@seed=$${CHAOS_SEED:-$$(date +%s)}; \
	echo "repair-chaos: extra seed $$seed (reproduce with CHAOS_SEED=$$seed make repair-chaos)"; \
	CHAOS_SEED=$$seed $(GO) test -race -run ChaosKilledDisk ./internal/repair/

# The committed repair scheduler numbers (BENCH_repair.json): MTTR and
# foreground p99 as a function of the token-bucket rate limit.
repair-json:
	$(GO) run ./cmd/ecfrmbench -repair BENCH_repair.json

# End-to-end networked-cluster check: three file-backed data-node processes
# behind a gateway process on localhost, readiness-gated startup, a concurrent
# PUT burst, hedge activity under an injected slow device, and a SIGKILLed
# node mid-traffic with zero failed reads — every GET byte-identical through
# degraded reconstruction, replan/degraded/node-down series live on /metrics.
cluster-smoke:
	./scripts/cluster-smoke.sh

# The committed cluster numbers (BENCH_cluster.json): local vs networked vs
# networked+hedged read latency, and degraded-read network amplification with
# one node down.
cluster-json:
	$(GO) run ./cmd/ecfrmbench -cluster BENCH_cluster.json

# A short fuzz run over the GF kernel equivalence target.
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzKernelEquivalence -fuzztime 10s ./internal/gf

# A short fuzz run over the GF(2^16) split-table/reference equivalence target.
fuzz16-smoke:
	$(GO) test -run NONE -fuzz FuzzGF16Tables -fuzztime 10s ./internal/gf16

# The seeded chaos suite under the race detector: the two fixed seeds plus a
# time-derived one (echoed here and in the test log — rerun any failure with
# CHAOS_SEED=<seed>). -count=2 re-runs everything to shake out order effects.
chaos:
	@seed=$${CHAOS_SEED:-$$(date +%s)}; \
	echo "chaos: extra seed $$seed (reproduce with CHAOS_SEED=$$seed make chaos)"; \
	CHAOS_SEED=$$seed $(GO) test -race -count=2 -run 'Chaos|FaultSequence|Replays|FaultStreams|StreamSourceFault|StreamSinkFault' \
		./internal/faultinject/ ./internal/shardio/

ci: vet race race-io bench-smoke widestripe readpath-smoke obs-smoke fanout-smoke writepath-smoke disk-smoke disk-json repair-smoke repair-chaos cluster-smoke cluster-json chaos
