// Layout explorer: prints the EC-FRM construction for any candidate code
// shape — the stripe grid, the group structure of Equations (1)-(4), and the
// Lemma 1 invariant check (every disk holds exactly one element per group).
// Reproduces the paper's Figure 4/5 for (10,6) by default.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	k := flag.Int("k", 6, "data elements per candidate row")
	l := flag.Int("l", 2, "LRC local parities (0 = use Reed-Solomon)")
	m := flag.Int("m", 2, "parities (RS) / global parities (LRC)")
	flag.Parse()

	var (
		code ecfrm.Code
		err  error
	)
	if *l == 0 {
		code, err = ecfrm.NewRS(*k, *m)
	} else {
		code, err = ecfrm.NewLRC(*k, *l, *m)
	}
	if err != nil {
		log.Fatal(err)
	}

	scheme, err := ecfrm.NewScheme(code, ecfrm.FormECFRM)
	if err != nil {
		log.Fatal(err)
	}
	lay := scheme.Layout()
	n := lay.N()
	fmt.Printf("%s: r = gcd(%d,%d), stripe = %d rows × %d disks, %d groups\n\n",
		scheme.Name(), n, *k, lay.Rows(), n, lay.Groups())

	// The stripe grid, Figure 4 style.
	fmt.Print("      ")
	for col := 0; col < n; col++ {
		fmt.Printf("  G%-4s", fmt.Sprint(lay.CellAt(ecfrm.Pos{Row: 0, Col: col}).Group))
	}
	fmt.Println("   <- group of row-0 cell")
	for row := 0; row < lay.Rows(); row++ {
		fmt.Printf("row %d:", row)
		for col := 0; col < n; col++ {
			c := lay.CellAt(ecfrm.Pos{Row: row, Col: col})
			kind := 'd'
			if !c.IsData {
				kind = 'p'
			}
			fmt.Printf(" %c%d/%-3d", kind, c.Group, c.Element)
		}
		fmt.Println()
	}

	// Group walk, §IV-B Step-1: data indices then parity cells.
	fmt.Println("\ngroups (element t → row,col):")
	for g := 0; g < lay.Groups(); g++ {
		fmt.Printf("  G%d:", g)
		for t := 0; t < n; t++ {
			p := lay.GroupCell(g, t)
			sep := " "
			if t == *k {
				sep = " | " // data/parity boundary
			}
			fmt.Printf("%s(%d,%d)", sep, p.Row, p.Col)
		}
		fmt.Println()
	}

	// Lemma 1 invariant: one element of every group on every disk.
	fmt.Println("\nLemma 1 check (elements of each group per disk):")
	ok := true
	for g := 0; g < lay.Groups(); g++ {
		perDisk := make([]int, n)
		for t := 0; t < n; t++ {
			perDisk[lay.GroupCell(g, t).Col]++
		}
		for d, c := range perDisk {
			if c != 1 {
				fmt.Printf("  VIOLATION: group %d has %d elements on disk %d\n", g, c, d)
				ok = false
			}
		}
	}
	if ok {
		fmt.Println("  every disk holds exactly one element of every group ✓")
		fmt.Printf("  → any %d disk failures erase ≤ %d elements per group, so the\n",
			scheme.FaultTolerance(), scheme.FaultTolerance())
		fmt.Printf("    candidate's fault tolerance (%d) carries over unchanged.\n",
			scheme.FaultTolerance())
	}
}
