// Reliability example: the durability consequences of the coding choices
// the paper discusses. Fault tolerance (how many failures a scheme survives)
// and repair speed (how fast a lost disk is rebuilt — where LRC's local
// parities shine) combine into mean time to data loss; this example computes
// MTTDL analytically for the paper's configurations, cross-checks one
// point by Monte Carlo, and reports durability "nines" over a 10-year
// mission.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/reliability"
)

func main() {
	const (
		mttf       = 100_000 * time.Hour // ~11.4 years per drive
		elemBytes  = 1 << 20
		perDisk    = 2000 // elements a failed disk carries
		diskMBps   = 50
		detect     = 5 * time.Minute
		missionDur = 10 * 365 * 24 * time.Hour
	)

	type scheme struct {
		name      string
		disks     int
		tolerance int
		// repairReads is the elements read to rebuild one element
		// (k for RS; k/l for most LRC cells).
		repairReads int
	}
	schemes := []scheme{
		{"RS(6,3) / EC-FRM-RS(6,3)", 9, 3, 6 * perDisk},
		{"RS(10,5) / EC-FRM-RS(10,5)", 15, 5, 10 * perDisk},
		{"LRC(6,2,2) / EC-FRM-LRC(6,2,2)", 10, 3, 36 * perDisk / 10}, // mixed-cell average: 3.6×
		{"LRC(10,2,4) / EC-FRM-LRC(10,2,4)", 16, 5, 625 * perDisk / 100},
		{"3-replication", 3, 2, perDisk},
	}

	fmt.Println("Durability of the paper's configurations (per stripe group of disks)")
	fmt.Printf("%-34s %6s %9s %12s %14s %8s\n",
		"scheme", "disks", "tolerate", "repair time", "MTTDL (years)", "nines")
	for _, s := range schemes {
		repair := reliability.RepairModel(s.repairReads, perDisk, elemBytes, diskMBps, detect)
		m := reliability.Model{
			Disks:          s.disks,
			FaultTolerance: s.tolerance,
			MTTFDisk:       mttf,
			MTTR:           repair,
		}
		mttdl, err := reliability.MTTDL(m)
		if err != nil {
			log.Fatal(err)
		}
		nines := reliability.NinesOfDurability(mttdl, missionDur)
		fmt.Printf("%-34s %6d %9d %12s %14.3g %8.1f\n",
			s.name, s.disks, s.tolerance, repair.Round(time.Second),
			mttdl/8760, nines)
	}

	// Cross-check the analytic model by simulation on a fast-failing
	// configuration (full-scale MTTDLs are too long to simulate).
	fmt.Println("\nModel validation (deliberately fragile parameters):")
	small := reliability.Model{Disks: 6, FaultTolerance: 1,
		MTTFDisk: 100 * time.Hour, MTTR: 10 * time.Hour}
	analytic, _ := reliability.MTTDL(small)
	sim, err := reliability.SimulateMTTDL(small, 20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  analytic MTTDL %7.1f h   Monte Carlo %7.1f h   (Δ %.1f%%)\n",
		analytic, sim, 100*(sim/analytic-1))

	fmt.Println("\nTakeaways: EC-FRM inherits its candidate's tolerance and repair cost, so")
	fmt.Println("its durability equals the standard form's exactly. LRC's local parities")
	fmt.Println("shorten rebuilds, but its extra parity disk adds failure exposure — at equal")
	fmt.Println("tolerance RS stays slightly more durable; LRC's win is repair I/O and")
	fmt.Println("degraded reads, which is precisely how the Azure paper sells it.")
}
