// Wide-stripe example: GF(2^8) caps a code at 256 elements per row, which
// the paper never hits at Table I scale — but cloud deployments that stripe
// across hundreds of disks do. This example uses the first-class GF(2^16)
// kernels to build RS16(300,20), far past the byte-field limit, runs it
// through the EC-FRM framework, and round-trips a 20-erasure recovery.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gf16"
	"repro/internal/layout"
	"repro/internal/rs"
)

func main() {
	const k, m = 300, 20
	code, err := rs.New16(k, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wide Reed-Solomon over GF(2^16): k=%d data + m=%d parity = %d shards\n",
		code.K(), code.M(), code.N())
	fmt.Printf("storage overhead %.3fx — impossible over GF(2^8), which allows at most 256 shards\n",
		float64(k+m)/float64(k))
	fmt.Printf("SIMD gf16 kernels enabled: %v\n\n", gf16.SIMDEnabled())

	// Shards are ordinary byte slices holding little-endian-packed 16-bit
	// symbols, so the wide code drops into the framework unchanged.
	scheme := core.MustScheme(code, layout.FormECFRM)
	const shardBytes = 8 << 10 // 4096 symbols × 2 bytes
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, scheme.DataPerStripe())
	for i := range data {
		data[i] = make([]byte, shardBytes)
		rng.Read(data[i])
	}
	cells, err := scheme.EncodeStripe(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d KiB of data under %s\n", k*shardBytes>>10, scheme.Name())

	// Erase the maximum m shards at random and reconstruct.
	broken := make([][]byte, len(cells))
	for i, s := range cells {
		broken[i] = append([]byte(nil), s...)
	}
	erased := rng.Perm(k + m)[:m]
	for _, e := range erased {
		broken[e] = nil
	}
	fmt.Printf("erased %d shards: %v...\n", m, erased[:6])
	if err := scheme.ReconstructStripe(broken); err != nil {
		log.Fatal(err)
	}
	for i := range cells {
		if !bytes.Equal(broken[i], cells[i]) {
			log.Fatalf("shard %d mismatch after recovery", i)
		}
	}
	fmt.Printf("all %d shards verified after recovery — wide-stripe MDS holds\n", k+m)

	// Degraded read: one disk down, the planner picks survivor sets and the
	// rebuilt element matches the original bytes.
	failed := []int{erased[0] % scheme.N()}
	plan, err := scheme.PlanDegradedRead(0, scheme.DataPerStripe(), failed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded read with disk %d down: %d reads, cost %.3f, max disk load %d\n",
		failed[0], plan.TotalReads(), plan.Cost(), plan.MaxLoad())
}
