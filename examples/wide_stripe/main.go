// Wide-stripe example: GF(2^8) caps a code at 256 elements per row, which
// the paper never hits at Table I scale — but cloud deployments that stripe
// across hundreds of disks do. This example uses the GF(2^16) substrate to
// build RS(300,20), far past the byte-field limit, and round-trips a
// 20-erasure recovery.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gf16"
)

func main() {
	const k, m = 300, 20
	code, err := gf16.NewRS(k, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wide Reed-Solomon over GF(2^16): k=%d data + m=%d parity = %d shards\n",
		code.K(), code.M(), code.K()+code.M())
	fmt.Printf("storage overhead %.3fx — impossible over GF(2^8), which allows at most 256 shards\n\n",
		float64(k+m)/float64(k))

	// 300 data shards of 4096 symbols (8 KiB each).
	rng := rand.New(rand.NewSource(1))
	data := make([][]uint16, k)
	for i := range data {
		data[i] = make([]uint16, 4096)
		for j := range data[i] {
			data[i][j] = uint16(rng.Intn(1 << 16))
		}
	}
	parity, err := code.Encode(data)
	if err != nil {
		log.Fatal(err)
	}
	full := append(append([][]uint16{}, data...), parity...)
	fmt.Printf("encoded %d KiB of data into %d parity shards\n", k*8, len(parity))

	// Erase the maximum m shards at random and reconstruct.
	shards := make([][]uint16, len(full))
	for i, s := range full {
		shards[i] = append([]uint16(nil), s...)
	}
	erased := rng.Perm(k + m)[:m]
	for _, e := range erased {
		shards[e] = nil
	}
	fmt.Printf("erased %d shards: %v...\n", m, erased[:6])
	if err := code.Reconstruct(shards); err != nil {
		log.Fatal(err)
	}
	for i := range full {
		for j := range full[i] {
			if shards[i][j] != full[i][j] {
				log.Fatalf("shard %d symbol %d mismatch", i, j)
			}
		}
	}
	fmt.Println("all 320 shards verified after recovery — wide-stripe MDS holds")
}
