// Quickstart: the smallest complete EC-FRM flow through the public API —
// build an EC-FRM-RS scheme, store data, lose disks, read through the
// failure, and repair.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// Google's production configuration: RS(6,3), deployed under the
	// paper's EC-FRM layout. 9 disks, tolerates any 3 failures, 1.5x
	// storage overhead — same guarantees as standard RS, faster reads.
	code, err := ecfrm.NewRS(6, 3)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := ecfrm.NewScheme(code, ecfrm.FormECFRM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheme %s: %d disks, tolerates %d failures, %.2fx overhead\n",
		scheme.Name(), scheme.N(), scheme.FaultTolerance(), scheme.StorageOverhead())

	// A store with 64 KiB elements.
	st, err := ecfrm.NewStore(scheme, 64<<10)
	if err != nil {
		log.Fatal(err)
	}

	// Write 4 MiB of data (append-only; stripes seal as they fill).
	payload := make([]byte, 4<<20)
	rand.New(rand.NewSource(42)).Read(payload)
	if err := st.Append(payload); err != nil {
		log.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d bytes in %d stripes\n", st.Len(), st.Stripes())

	// Normal read: only data cells, one element per disk per round.
	res, err := st.ReadAt(1<<20, 512<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normal read:   %d bytes, %d element reads, max disk load %d\n",
		len(res.Data), res.Plan.TotalReads(), res.Plan.MaxLoad())

	// Fail three disks — the maximum RS(6,3) survives.
	for _, d := range []int{0, 4, 7} {
		st.FailDisk(d)
	}
	res, err = st.ReadAt(1<<20, 512<<10)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(res.Data, payload[1<<20:(1<<20)+(512<<10)]) {
		log.Fatal("degraded read returned wrong bytes")
	}
	fmt.Printf("degraded read: %d bytes through 3 failed disks, cost %.2f reads/element\n",
		len(res.Data), res.Plan.Cost())

	// Repair the disks one by one and verify the whole store.
	for _, d := range []int{0, 4, 7} {
		cost, err := st.RecoverDisk(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovered disk %d reading %d elements\n", d, cost)
	}
	if bad, err := st.Scrub(); err != nil || bad != nil {
		log.Fatalf("scrub failed: stripes %v, err %v", bad, err)
	}
	fmt.Println("scrub clean — all parity consistent")
}
