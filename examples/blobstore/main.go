// Blobstore scenario: the workload the paper's introduction motivates —
// media files of a few to dozens of megabytes stored in 1 MB elements on an
// erasure-coded store (the paper's MP3 example, §III-A). Stores a catalog of
// objects under LRC(6,2,2) with the standard and the EC-FRM layouts, replays
// the same random object-read trace against both, and compares per-disk load
// balance and simulated throughput, with and without a disk failure.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

const elemSize = 1 << 20 // the paper's ~1 MB element

type object struct {
	name string
	off  int64
	size int
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// A catalog of "MP3 files": 3-18 MB each, ~180 MB total.
	var objects []object
	var off int64
	for i := 0; off < 180<<20; i++ {
		size := (3 + rng.Intn(16)) << 20
		objects = append(objects, object{fmt.Sprintf("track%03d.mp3", i), off, size})
		off += int64(size)
	}
	payload := make([]byte, off)
	rng.Read(payload)
	fmt.Printf("catalog: %d objects, %d MB total\n\n", len(objects), off>>20)

	code, err := ecfrm.NewLRC(6, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	trace := make([]int, 300)
	for i := range trace {
		trace[i] = rng.Intn(len(objects))
	}

	for _, form := range []ecfrm.Form{ecfrm.FormStandard, ecfrm.FormECFRM} {
		scheme, err := ecfrm.NewScheme(code, form)
		if err != nil {
			log.Fatal(err)
		}
		st, err := ecfrm.NewStore(scheme, elemSize)
		if err != nil {
			log.Fatal(err)
		}
		if err := st.Append(payload); err != nil {
			log.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			log.Fatal(err)
		}
		arr, err := ecfrm.NewDiskArray(scheme.N(), ecfrm.DefaultDiskConfig(), 99)
		if err != nil {
			log.Fatal(err)
		}

		run := func(label string) {
			st.ResetCounters()
			var elapsed time.Duration
			var bytesRead int
			maxLoadSum := 0
			for _, oi := range trace {
				o := objects[oi]
				res, err := st.ReadAt(o.off, o.size)
				if err != nil {
					log.Fatalf("%s read %s: %v", scheme.Name(), o.name, err)
				}
				elapsed += arr.ServeRead(res.Plan.Loads, elemSize)
				bytesRead += o.size
				maxLoadSum += res.Plan.MaxLoad()
			}
			// Per-device balance from the store's real counters.
			minR, maxR := -1, 0
			for d := 0; d < scheme.N(); d++ {
				r := st.Device(d).Reads()
				if minR < 0 || r < minR {
					minR = r
				}
				if r > maxR {
					maxR = r
				}
			}
			fmt.Printf("  %-22s %7.1f MB/s   mean max-load %.2f   device reads min/max %d/%d\n",
				label, ecfrm.SpeedMBps(bytesRead, elapsed),
				float64(maxLoadSum)/float64(len(trace)), minR, maxR)
		}

		fmt.Printf("%s:\n", scheme.Name())
		run("healthy array")
		st.FailDisk(2)
		run("disk 2 failed")
		if _, err := st.RecoverDisk(2); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("EC-FRM serves the identical trace faster in both states because")
	fmt.Println("sequential elements spread across all 10 disks instead of 6.")
}
