// Cluster example: the paper's "sufficient bandwidth" assumption (§III),
// made visible. The same normal-read workload runs against standard LRC and
// EC-FRM-LRC deployed across storage nodes, while the client's ingress link
// shrinks from datacenter-fat to WAN-thin. EC-FRM's advantage lives entirely
// in the disk-bound regime.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	code, err := ecfrm.NewLRC(6, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := ecfrm.NewWorkload(ecfrm.WorkloadConfig{TotalElements: 600, Disks: code.N(), Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	trials := gen.NormalSeries(500)
	const elem = 1 << 20

	fmt.Println("Normal reads on (6,2,2), 10 storage nodes, varying client ingress link")
	fmt.Printf("%-14s %14s %14s %10s\n", "client link", "LRC MB/s", "EC-FRM MB/s", "gain")
	for _, mbps := range []float64{1250, 400, 100, 50, 25} {
		speeds := map[ecfrm.Form]float64{}
		for _, form := range []ecfrm.Form{ecfrm.FormStandard, ecfrm.FormECFRM} {
			scheme, err := ecfrm.NewScheme(code, form)
			if err != nil {
				log.Fatal(err)
			}
			cfg := ecfrm.DefaultClusterConfig()
			cfg.ClientLinkMBps = mbps
			cl, err := ecfrm.NewCluster(scheme, cfg)
			if err != nil {
				log.Fatal(err)
			}
			var sum float64
			for _, tr := range trials {
				res, err := cl.Read(tr.Start, tr.Count, elem, nil)
				if err != nil {
					log.Fatal(err)
				}
				sum += float64(tr.Count*elem) / 1e6 / res.Time.Seconds()
			}
			speeds[form] = sum / float64(len(trials))
		}
		gain := 100 * (speeds[ecfrm.FormECFRM]/speeds[ecfrm.FormStandard] - 1)
		fmt.Printf("%-11.0f MB/s %14.1f %14.1f %9.1f%%\n",
			mbps, speeds[ecfrm.FormStandard], speeds[ecfrm.FormECFRM], gain)
	}
	fmt.Println("\nWith fat links the disks are the bottleneck and EC-FRM's load spreading")
	fmt.Println("delivers its full margin; once the client NIC limits, layout is moot —")
	fmt.Println("which is why the paper scopes itself to bandwidth-rich clusters.")
}
