// Degraded-read walkthrough: reproduces the paper's §III/§V worked examples
// (Figures 3 and 7) on the (6,2,2) LRC shape, comparing how the three layout
// forms distribute an 8-element normal read and 14-element degraded reads,
// then times them on the simulated disk array.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	code, err := ecfrm.NewLRC(6, 2, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Paper Figure 3 / 7(a): an 8-element normal read on (6,2,2)")
	fmt.Println("-----------------------------------------------------------")
	schemes := map[ecfrm.Form]*ecfrm.Scheme{}
	for _, form := range []ecfrm.Form{ecfrm.FormStandard, ecfrm.FormRotated, ecfrm.FormECFRM} {
		s, err := ecfrm.NewScheme(code, form)
		if err != nil {
			log.Fatal(err)
		}
		schemes[form] = s
		plan, err := s.PlanNormalRead(0, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s max disk load %d, %d disks contribute, loads %v\n",
			s.Name(), plan.MaxLoad(), plan.ContributingDisks(), plan.Loads)
	}
	fmt.Println()
	fmt.Println("Standard/rotated LRC bottleneck on a disk serving 2 elements;")
	fmt.Println("EC-FRM spreads the 8 elements across 8 of the 10 disks (load 1).")
	fmt.Println()

	fmt.Println("Paper Figure 7(b)/(c): 14-element degraded reads on EC-FRM-LRC")
	fmt.Println("---------------------------------------------------------------")
	s := schemes[ecfrm.FormECFRM]
	for _, failed := range []int{1, 6} {
		plan, err := s.PlanDegradedRead(0, 14, []int{failed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("failed disk %d: %d total reads (cost %.2f), max load %d, loads %v\n",
			failed, plan.TotalReads(), plan.Cost(), plan.MaxLoad(), plan.Loads)
	}
	fmt.Println()

	fmt.Println("Timing the same degraded request under each form")
	fmt.Println("------------------------------------------------")
	arr, err := ecfrm.NewDiskArray(code.N(), ecfrm.DefaultDiskConfig(), 2015)
	if err != nil {
		log.Fatal(err)
	}
	const elem = 1 << 20
	for _, form := range []ecfrm.Form{ecfrm.FormStandard, ecfrm.FormRotated, ecfrm.FormECFRM} {
		s := schemes[form]
		plan, err := s.PlanDegradedRead(0, 14, []int{1})
		if err != nil {
			log.Fatal(err)
		}
		t := arr.ServeRead(plan.Loads, elem)
		fmt.Printf("%-18s %6.1f ms → %6.1f MB/s\n",
			s.Name(), float64(t.Microseconds())/1000, ecfrm.SpeedMBps(14*elem, t))
	}
}
